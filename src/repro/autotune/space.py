"""The candidate space: which machines the autotuner may propose.

A :class:`SearchSpace` is a base :class:`~repro.config.MachineConfig`
plus an ordered list of :class:`Axis` objects, each naming the discrete
values one knob may take.  The cartesian product of the axis values is
the candidate space; every candidate has a stable integer index
(mixed-radix, rightmost axis fastest), so strategies, resume artifacts
and reports all speak the same coordinates.

Not every coordinate is a machine: combinations the config validator
rejects (say, ``regs_per_instruction`` below ``n_gprs``) decode to
``None`` and are skipped, never evaluated.  Custom-instruction axes are
populated by mining the workload itself (:func:`mine_custom_ops`), so
the space can range over "no custom ops / top-1 / top-2" exactly as the
paper's customisation flow does.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.errors import ConfigError, TuneError
from repro.workloads import WorkloadSpec, XorShift32

#: Latency classes a latency axis may range over (mirrors the config
#: validator's required table).
LATENCY_CLASSES = ("alu", "mul", "div", "cmp", "load", "store",
                   "branch", "pbr")


@dataclass(frozen=True)
class Axis:
    """One knob: a name, its candidate values, and how a value lands."""

    name: str
    values: Tuple[object, ...]
    setter: Callable[[MachineConfig, object], MachineConfig] = field(
        compare=False)

    def __post_init__(self) -> None:
        if not self.values:
            raise TuneError(f"axis {self.name!r} has no values")
        if len(set(map(repr, self.values))) != len(self.values):
            raise TuneError(f"axis {self.name!r} has duplicate values")

    def apply(self, config: MachineConfig,
              value: object) -> MachineConfig:
        return self.setter(config, value)


def field_axis(name: str, values: Sequence[object]) -> Axis:
    """An axis over one :class:`MachineConfig` dataclass field."""
    if name not in MachineConfig.__dataclass_fields__:
        raise TuneError(f"unknown MachineConfig field {name!r}")
    return Axis(name, tuple(values),
                lambda config, value: config.with_changes(**{name: value}))


def latency_axis(op_class: str, values: Sequence[int]) -> Axis:
    """An axis over one operation class's latency (in cycles)."""
    if op_class not in LATENCY_CLASSES:
        raise TuneError(
            f"unknown latency class {op_class!r} "
            f"(known: {', '.join(LATENCY_CLASSES)})"
        )
    return Axis(f"latency.{op_class}", tuple(int(v) for v in values),
                lambda config, value: config.with_latency(op_class, value))


def custom_ops_axis(specs: Sequence[object],
                    counts: Sequence[int]) -> Axis:
    """An axis over how many mined custom instructions to adopt.

    ``specs`` is the ranked list from :func:`mine_custom_ops`; each
    axis value ``k`` equips the candidate with the top ``k`` of them.
    """
    specs = tuple(specs)
    counts = tuple(int(c) for c in counts)
    for count in counts:
        if count < 0 or count > len(specs):
            raise TuneError(
                f"custom-op count {count} out of range: "
                f"{len(specs)} instruction(s) were mined"
            )
    return Axis(
        "custom_ops", counts,
        lambda config, value: config.with_changes(
            custom_ops=specs[:value]),
    )


def mine_custom_ops(spec: WorkloadSpec, top_k: int) -> Tuple[object, ...]:
    """Mine the workload for fusable custom instructions, ranked.

    Compiles the workload's MiniC source and runs the fusion-discovery
    pass (:func:`repro.explore.custominsn.discover_and_apply`) on a
    scratch module; only the resulting :class:`CustomOpSpec` contracts
    are kept.  The evaluation layer re-derives the same rewrite
    deterministically when it scores a custom-op candidate.
    """
    from repro.explore.custominsn import discover_and_apply
    from repro.lang.compile import compile_minic

    module = compile_minic(spec.source)
    return tuple(discover_and_apply(module, top_k=top_k,
                                    mem_words=spec.mem_words))


class SearchSpace:
    """A base config crossed with a list of axes, indexable and seeded."""

    def __init__(self, base: MachineConfig, axes: Sequence[Axis]):
        axes = tuple(axes)
        if not axes:
            raise TuneError("a search space needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise TuneError(f"duplicate axis names: {sorted(names)}")
        self.base = base
        self.axes = axes

    @property
    def size(self) -> int:
        """Number of coordinates (valid or not) in the space."""
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    # -- coordinates ---------------------------------------------------

    def decode(self, index: int) -> Tuple[int, ...]:
        """Mixed-radix digits of ``index`` (rightmost axis fastest)."""
        if not 0 <= index < self.size:
            raise TuneError(f"index {index} out of range for a "
                            f"{self.size}-point space")
        digits = []
        for axis in reversed(self.axes):
            index, digit = divmod(index, len(axis.values))
            digits.append(digit)
        return tuple(reversed(digits))

    def encode(self, digits: Sequence[int]) -> int:
        index = 0
        for axis, digit in zip(self.axes, digits):
            index = index * len(axis.values) + digit
        return index

    def choices_at(self, index: int) -> Dict[str, object]:
        """Axis-name -> value mapping of one coordinate."""
        digits = self.decode(index)
        return {axis.name: axis.values[digit]
                for axis, digit in zip(self.axes, digits)}

    def config_at(self, index: int) -> Optional[MachineConfig]:
        """The machine at one coordinate; ``None`` if it fails to
        validate (an invalid knob combination, not an error)."""
        digits = self.decode(index)
        config = self.base
        try:
            for axis, digit in zip(self.axes, digits):
                config = axis.apply(config, axis.values[digit])
        except ConfigError:
            return None
        return config

    def enumerate_configs(self) -> Iterator[Tuple[int, MachineConfig]]:
        """All valid candidates in index order."""
        for index in range(self.size):
            config = self.config_at(index)
            if config is not None:
                yield index, config

    def neighbours(self, index: int) -> List[int]:
        """Coordinates one step along one axis (no wrap-around).

        Deterministic order: axis by axis, down-step before up-step —
        the hill-climber's move order depends only on the coordinate.
        """
        digits = list(self.decode(index))
        result = []
        for position, axis in enumerate(self.axes):
            digit = digits[position]
            for step in (-1, 1):
                neighbour = digit + step
                if 0 <= neighbour < len(axis.values):
                    digits[position] = neighbour
                    result.append(self.encode(digits))
            digits[position] = digit
        return result

    def sample(self, rng: XorShift32) -> int:
        """One seeded coordinate draw (uniform over all coordinates)."""
        return rng.below(self.size)

    # -- identity ------------------------------------------------------

    def fingerprint(self) -> str:
        """Content digest of the space: base config + axes + values.

        Two spaces with the same fingerprint index the same candidates,
        which is what resuming a search from a report artifact needs.
        """
        payload = {
            "base": self.base.canonical(),
            "axes": [{"name": axis.name,
                      "values": [repr(v) for v in axis.values]}
                     for axis in self.axes],
        }
        rendered = json.dumps(payload, sort_keys=True,
                              separators=(",", ":"))
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        parts = [f"{axis.name}({len(axis.values)})" for axis in self.axes]
        return f"{self.size} candidates: {' x '.join(parts)}"
