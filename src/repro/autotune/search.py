"""Search strategies: exhaustive, seeded-random, and hill-climbing.

Every strategy is a deterministic function of (space, seed, budget):
all randomness comes from the repo's :class:`XorShift32`, every draw
happens in the driving process before any evaluation is submitted, and
candidates are submitted in fixed-size batches whose size never depends
on the executor — so the trajectory, the evaluation log and the final
archive are byte-identical whether the evaluations ran serially, on a
process pool, or replayed out of a warm result cache.

The hill-climber is a multi-restart dominance-descent: each restart
seeds itself with a small random tournament ("rung"), adopts the
non-dominated winner, and then moves only to neighbours that strictly
dominate the current point, restarting at local optima.  Given a
budget of at least the space size it degenerates into a full visit, so
its frontier provably equals the exhaustive one — the property the CI
smoke gate checks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import TuneError
from repro.explore.pareto import dominates
from repro.workloads import XorShift32

from repro.autotune.archive import STATUS_OK, TuneArchive, TuneRecord
from repro.autotune.evaluate import CandidateEvaluator
from repro.autotune.space import SearchSpace

#: Candidates submitted per evaluation batch.  Fixed (never derived
#: from the executor's worker count) so parallelism cannot change the
#: trajectory.
BATCH_SIZE = 8

#: Tournament size seeding each hill-climber restart.
RUNG_SIZE = 4

STRATEGIES = ("exhaustive", "random", "hill")


class _Driver:
    """Shared per-run state: visited set, budget, batch submission."""

    def __init__(self, space: SearchSpace, evaluator: CandidateEvaluator,
                 archive: TuneArchive, budget: int,
                 batch_size: int = BATCH_SIZE):
        if budget < 1:
            raise TuneError("search budget must be >= 1 evaluation")
        self.space = space
        self.evaluator = evaluator
        self.archive = archive
        self.budget = min(budget, space.size)
        self.batch_size = batch_size
        self.visited: Set[int] = set()
        self.trajectory: List[Dict[str, object]] = []
        #: index -> (record, disposition) for every visited coordinate.
        self.results: Dict[int, Tuple[TuneRecord, str]] = {}

    @property
    def remaining(self) -> int:
        return self.budget - len(self.visited)

    def exhausted(self) -> bool:
        return self.remaining <= 0 or len(self.visited) >= self.space.size

    def submit(self, indices: Sequence[int],
               phase: str) -> List[Tuple[TuneRecord, str]]:
        """Evaluate unvisited ``indices`` (in order, batched)."""
        indices = [index for index in indices
                   if index not in self.visited][:max(0, self.remaining)]
        if not indices:
            return []
        self.trajectory.append({"phase": phase, "indices": list(indices)})
        out: List[Tuple[TuneRecord, str]] = []
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start:start + self.batch_size]
            records = self.evaluator.evaluate_batch(self.space, batch)
            for index, record in zip(batch, records):
                disposition = self.archive.consider(record)
                self.visited.add(index)
                self.results[index] = (record, disposition)
                out.append((record, disposition))
        return out

    def key_of(self, index: int) -> Optional[Tuple[float, ...]]:
        """Sense-adjusted objective tuple of a *feasible, scored* visit."""
        if index not in self.results:
            return None  # budget ran out before this one was evaluated
        record, disposition = self.results[index]
        if record.status != STATUS_OK or disposition == "infeasible":
            return None
        try:
            return self.archive.key(record.metrics)
        except TuneError:
            return None


def _draw_unvisited(driver: _Driver, rng: XorShift32) -> int:
    """One seeded unvisited coordinate.

    Rejection-samples the space; after ``4 * size + 16`` misses (only
    plausible when nearly everything is visited) it falls back to the
    lowest unvisited index, keeping the draw total and deterministic.
    """
    space_size = driver.space.size
    for _attempt in range(4 * space_size + 16):
        index = driver.space.sample(rng)
        if index not in driver.visited:
            return index
    for index in range(space_size):
        if index not in driver.visited:
            return index
    raise TuneError("no unvisited coordinates remain")


# -- strategies --------------------------------------------------------

def _run_exhaustive(driver: _Driver, rng: XorShift32) -> None:
    del rng  # order is fixed; an exhaustive scan draws nothing
    driver.submit(range(min(driver.budget, driver.space.size)), "scan")


def _run_random(driver: _Driver, rng: XorShift32) -> None:
    while not driver.exhausted():
        count = min(driver.remaining, driver.batch_size)
        batch = []
        for _ in range(count):
            index = _draw_unvisited(driver, rng)
            driver.visited.add(index)  # reserve against re-draws
            batch.append(index)
        driver.visited.difference_update(batch)
        driver.submit(batch, "sample")


def _run_hill(driver: _Driver, rng: XorShift32) -> None:
    while not driver.exhausted():
        # Rung: a small seeded tournament picks the restart point.
        rung = []
        for _ in range(min(RUNG_SIZE, driver.remaining)):
            index = _draw_unvisited(driver, rng)
            driver.visited.add(index)
            rung.append(index)
        driver.visited.difference_update(rung)
        driver.submit(rung, "rung")
        current = _best_of(driver, rung)
        if current is None:
            continue  # nothing feasible in the rung; restart
        # Descent: move only to neighbours that strictly dominate.
        while not driver.exhausted():
            neighbours = [index for index
                          in driver.space.neighbours(current)
                          if index not in driver.visited]
            if not neighbours:
                break
            driver.submit(neighbours, "descend")
            current_key = driver.key_of(current)
            best = None
            for index in neighbours:
                key = driver.key_of(index)
                if key is None or current_key is None:
                    continue
                if not dominates(key, current_key):
                    continue
                rank = (key, driver.results[index][0].digest)
                if best is None or rank < best[0]:
                    best = (rank, index)
            if best is None:
                break  # local optimum; restart
            current = best[1]


def _best_of(driver: _Driver, indices: Sequence[int]) -> Optional[int]:
    """Tournament winner: feasible, scored, non-dominated, lowest key."""
    ranked = []
    for index in indices:
        key = driver.key_of(index)
        if key is None:
            continue
        record, _disposition = driver.results[index]
        ranked.append(((key, record.digest), index))
    candidates = [entry for entry in ranked
                  if not any(dominates(other[0][0], entry[0][0])
                             for other in ranked)]
    if not candidates:
        return None
    return min(candidates)[1]


_STRATEGY_RUNNERS = {
    "exhaustive": _run_exhaustive,
    "random": _run_random,
    "hill": _run_hill,
}


# -- the driver --------------------------------------------------------

def tune(space: SearchSpace, evaluator: CandidateEvaluator,
         archive: TuneArchive, strategy: str = "exhaustive",
         seed: int = 1, budget: Optional[int] = None,
         batch_size: int = BATCH_SIZE,
         progress: Optional[Callable[[str], None]] = None
         ) -> Dict[str, object]:
    """Run one search and return the (deterministic) report payload.

    ``budget`` is the maximum number of coordinates to visit (default:
    the whole space).  ``seed`` feeds every random draw; zero is
    rejected (XorShift32 cannot hold state 0, matching the campaign
    seed contract).
    """
    if strategy not in _STRATEGY_RUNNERS:
        raise TuneError(f"unknown strategy {strategy!r} "
                        f"(known: {', '.join(STRATEGIES)})")
    if not seed:
        raise TuneError("search seed must be non-zero (XorShift32 "
                        "cannot hold state 0)")
    if budget is None:
        budget = space.size
    driver = _Driver(space, evaluator, archive, budget,
                     batch_size=batch_size)
    if progress is not None:
        progress(f"tuning {space.describe()} with {strategy!r}, "
                 f"budget {driver.budget}")
    _STRATEGY_RUNNERS[strategy](driver, XorShift32(seed))
    return {
        "version": 1,
        "space": {
            "fingerprint": space.fingerprint(),
            "size": space.size,
            "axes": [{"name": axis.name,
                      "values": [repr(value) for value in axis.values]}
                     for axis in space.axes],
        },
        "workload": {
            "name": evaluator.spec.name,
            "args": list(evaluator.spec.instance_args),
        },
        "settings": {
            "strategy": strategy,
            "seed": seed,
            "budget": driver.budget,
            "batch_size": batch_size,
            "objectives": list(archive.objectives),
            "constraints": [constraint.describe()
                            for constraint in archive.constraints],
            "cycle_budget": evaluator.cycle_budget,
            "faults_n": evaluator.faults_n,
            "faults_seed": evaluator.faults_seed,
            "campaign_engine": evaluator.campaign_engine,
            "validate": evaluator.validate,
        },
        "trajectory": driver.trajectory,
        "evaluations": list(evaluator.log),
        "archive": archive.to_payload(),
    }


def known_from_report(report: Dict[str, object],
                      space: SearchSpace,
                      settings: Dict[str, object],
                      workload: Optional[Dict[str, object]] = None
                      ) -> Dict[str, dict]:
    """Extract a resume map from a prior report, after compat checks.

    The prior run must have searched the *same* space (fingerprint)
    with the *same* evaluation settings — a stored score is only
    trustworthy if it answers the same question.  The strategy, seed
    and budget may differ: scores are keyed by config digest, not by
    trajectory position.
    """
    if not isinstance(report, dict) or "evaluations" not in report:
        raise TuneError("resume artifact is not a repro-tune report")
    prior_space = report.get("space", {})
    if prior_space.get("fingerprint") != space.fingerprint():
        raise TuneError(
            "resume artifact searched a different space "
            f"(fingerprint {prior_space.get('fingerprint', '?')[:12]} "
            f"!= {space.fingerprint()[:12]})"
        )
    if workload is not None and report.get("workload") != workload:
        raise TuneError(
            f"resume artifact scored workload {report.get('workload')} "
            f"but this run targets {workload}"
        )
    prior = dict(report.get("settings", {}))
    for field in ("objectives", "constraints", "cycle_budget",
                  "faults_n", "faults_seed", "campaign_engine",
                  "validate"):
        if prior.get(field) != settings.get(field):
            raise TuneError(
                f"resume artifact used a different {field} "
                f"({prior.get(field)!r} != {settings.get(field)!r}); "
                "its scores answer a different question"
            )
    known = {}
    for entry in report["evaluations"]:
        digest = entry.get("digest")
        if digest:
            known[digest] = entry
    return known
