"""Constraint-aware incremental Pareto archive over tuning records.

Built on the generic :class:`repro.explore.ParetoArchive` (the same
incremental frontier the sweep tooling uses), specialised three ways:

* **named objectives with senses** — ``cycles``/``slices``/``time_ms``/
  ``sdc_rate``/``block_rams`` are minimised, ``clock_mhz`` is maximised
  (stored negated so dominance is uniformly "smaller is better");
* **constraint predicates** — ``"slices<=7000"``-style bounds filter
  candidates *before* they reach the frontier, with per-constraint miss
  counters so an empty result explains itself;
* **canonical frontier order** — entries sort by (objective values,
  config digest), never by insertion order, so two strategies that
  visit the same candidates in different orders report byte-identical
  frontiers.

Budget-truncated and failed evaluations are counted and logged but can
never enter the archive: their metrics are budgets or absent, not
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TuneError
from repro.explore.pareto import ParetoArchive

#: Known objective/constraint metrics and their optimisation sense:
#: +1 minimises, -1 maximises (the archive stores sense-adjusted
#: values, so dominance is uniformly "smaller is better").
METRIC_SENSES: Dict[str, int] = {
    "cycles": 1,
    "slices": 1,
    "block_rams": 1,
    "time_ms": 1,
    "sdc_rate": 1,
    "clock_mhz": -1,
}

DEFAULT_OBJECTIVES: Tuple[str, ...] = ("cycles", "slices")

#: Evaluation statuses a record may arrive with.
STATUS_OK = "ok"            # fully scored, all requested metrics present
STATUS_BUDGET = "budget"    # cycle budget blown: cycles is a bound
STATUS_INVALID = "invalid"  # coordinate failed config validation
STATUS_FAILED = "failed"    # evaluation raised (compile/run error)

#: Dispositions the archive assigns to records it considers.
ARCHIVED = "archived"        # on the current frontier (may be evicted)
DOMINATED = "dominated"      # feasible but beaten on every objective
INFEASIBLE = "infeasible"    # failed one or more constraints

_OPERATORS = ("<=", ">=", "==", "!=", "<", ">")


@dataclass(frozen=True)
class Constraint:
    """One bound on a named metric, e.g. ``slices <= 7000``."""

    metric: str
    op: str
    bound: float

    @classmethod
    def parse(cls, text: str) -> "Constraint":
        """Parse ``"<metric><op><bound>"`` (e.g. ``"sdc_rate<0.01"``)."""
        stripped = text.replace(" ", "")
        for op in _OPERATORS:
            if op in stripped:
                metric, _, rhs = stripped.partition(op)
                if metric not in METRIC_SENSES:
                    raise TuneError(
                        f"unknown constraint metric {metric!r} (known: "
                        f"{', '.join(sorted(METRIC_SENSES))})"
                    )
                try:
                    bound = float(rhs)
                except ValueError:
                    raise TuneError(
                        f"constraint bound {rhs!r} is not a number "
                        f"(in {text!r})"
                    ) from None
                return cls(metric, op, bound)
        raise TuneError(
            f"cannot parse constraint {text!r}: expected "
            f"<metric><op><bound> with op one of {', '.join(_OPERATORS)}"
        )

    def check(self, metrics: Dict[str, float]) -> bool:
        """True iff the metric is present and satisfies the bound."""
        if self.metric not in metrics:
            return False
        value = metrics[self.metric]
        if self.op == "<=":
            return value <= self.bound
        if self.op == "<":
            return value < self.bound
        if self.op == ">=":
            return value >= self.bound
        if self.op == ">":
            return value > self.bound
        if self.op == "==":
            return value == self.bound
        return value != self.bound

    def describe(self) -> str:
        bound = int(self.bound) if self.bound == int(self.bound) \
            else self.bound
        return f"{self.metric}{self.op}{bound}"


@dataclass
class TuneRecord:
    """One evaluated candidate: coordinate, identity, metrics, status."""

    index: int
    digest: str
    describe: str
    choices: Dict[str, object]
    status: str
    metrics: Dict[str, float] = field(default_factory=dict)
    detail: str = ""

    def to_payload(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "digest": self.digest,
            "describe": self.describe,
            "choices": dict(self.choices),
            "status": self.status,
            "metrics": self.metrics,
            "detail": self.detail,
        }


class TuneArchive:
    """Incremental constrained Pareto archive with full accounting."""

    def __init__(self, objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                 constraints: Sequence[Constraint] = ()):
        objectives = tuple(objectives)
        if not objectives:
            raise TuneError("at least one objective is required")
        for name in objectives:
            if name not in METRIC_SENSES:
                raise TuneError(
                    f"unknown objective {name!r} (known: "
                    f"{', '.join(sorted(METRIC_SENSES))})"
                )
        if len(set(objectives)) != len(objectives):
            raise TuneError(f"duplicate objectives: {objectives}")
        self.objectives = objectives
        self.constraints = tuple(constraints)
        self._pareto: ParetoArchive[TuneRecord] = ParetoArchive(
            objectives=[
                (lambda record, _name=name:
                 METRIC_SENSES[_name] * record.metrics[_name])
                for name in objectives
            ])
        self.considered = 0
        self.counts: Dict[str, int] = {
            ARCHIVED: 0, DOMINATED: 0, INFEASIBLE: 0,
            STATUS_BUDGET: 0, STATUS_INVALID: 0, STATUS_FAILED: 0,
        }
        #: Per-constraint miss counters, aligned with ``constraints``.
        self.constraint_misses: List[int] = [0] * len(self.constraints)

    # -- dominance keys ------------------------------------------------

    def key(self, metrics: Dict[str, float]) -> Tuple[float, ...]:
        """Sense-adjusted objective tuple (smaller is better)."""
        try:
            return tuple(METRIC_SENSES[name] * metrics[name]
                         for name in self.objectives)
        except KeyError as error:
            raise TuneError(
                f"candidate metrics lack objective {error.args[0]!r}: "
                "was the evaluation configured to score it?"
            ) from error

    # -- feasibility ---------------------------------------------------

    def screen(self, metrics: Dict[str, float],
               count_misses: bool = True) -> List[Constraint]:
        """The constraints ``metrics`` fails (missing metric = fail)."""
        failed = []
        for position, constraint in enumerate(self.constraints):
            if not constraint.check(metrics):
                failed.append(constraint)
                if count_misses:
                    self.constraint_misses[position] += 1
        return failed

    # -- the archive proper --------------------------------------------

    def consider(self, record: TuneRecord) -> str:
        """Account for one evaluated candidate; returns its disposition.

        Only fully-scored (:data:`STATUS_OK`), constraint-satisfying
        records are offered to the Pareto frontier.  Budget-truncated,
        invalid and failed records are counted and kept out — their
        numbers are bounds or absent, not measurements.
        """
        self.considered += 1
        if record.status in (STATUS_BUDGET, STATUS_INVALID,
                             STATUS_FAILED):
            self.counts[record.status] += 1
            return record.status
        if record.status != STATUS_OK:
            raise TuneError(f"unknown evaluation status "
                            f"{record.status!r} for {record.digest}")
        if self.screen(record.metrics):
            self.counts[INFEASIBLE] += 1
            return INFEASIBLE
        if self._pareto.insert(record, values=self.key(record.metrics)):
            self.counts[ARCHIVED] += 1
            return ARCHIVED
        self.counts[DOMINATED] += 1
        return DOMINATED

    def frontier(self) -> List[TuneRecord]:
        """Current non-dominated set in canonical order.

        Sorted by (sense-adjusted objective values, config digest) —
        insertion order never leaks in, so any two searches that end on
        the same frontier *report* the same frontier, byte for byte.
        """
        entries = self._pareto.entries()
        return [record for record, _values in
                sorted(entries, key=lambda entry:
                       (entry[1], entry[0].digest))]

    def frontier_payload(self) -> List[Dict[str, object]]:
        return [record.to_payload() for record in self.frontier()]

    # -- reporting -----------------------------------------------------

    def explain(self) -> str:
        """One-paragraph account of where the candidates went.

        This is what makes an empty frontier a *result*: it names the
        constraints that rejected everything (with per-constraint miss
        counts) rather than silently reporting nothing.
        """
        parts = [f"{self.considered} candidate(s) considered:"]
        order = (ARCHIVED, DOMINATED, INFEASIBLE, STATUS_BUDGET,
                 STATUS_INVALID, STATUS_FAILED)
        parts.append(", ".join(f"{self.counts[k]} {k}" for k in order
                               if self.counts[k]) or "none evaluated")
        if self.counts[INFEASIBLE] and self.constraints:
            misses = "; ".join(
                f"{constraint.describe()} rejected {count}"
                for constraint, count in zip(self.constraints,
                                             self.constraint_misses)
                if count)
            parts.append(f"({misses})")
        if not self.frontier():
            if self.counts[INFEASIBLE] and not self.counts[ARCHIVED]:
                parts.append("— the frontier is empty because no "
                             "candidate satisfied the constraints")
            else:
                parts.append("— the frontier is empty")
        return " ".join(parts)

    def to_payload(self) -> Dict[str, object]:
        return {
            "objectives": list(self.objectives),
            "constraints": [c.describe() for c in self.constraints],
            "considered": self.considered,
            "counts": dict(self.counts),
            "constraint_misses": list(self.constraint_misses),
            "explain": self.explain(),
            "frontier": self.frontier_payload(),
        }


def parse_constraints(texts: Sequence[str]) -> Tuple[Constraint, ...]:
    """Parse a list of constraint strings (CLI helper)."""
    return tuple(Constraint.parse(text) for text in texts)
