"""Scoring candidates: model estimates, serve jobs, fault campaigns.

The evaluator turns space coordinates into :class:`TuneRecord`\\ s in
three phases, cheapest first:

1. **model** — the memoised FPGA cost model prices every candidate
   (slices, block RAMs, clock) for free; candidates that already fail a
   model-metric constraint are never simulated.
2. **sweep** — survivors are cycle-counted on the workload.  Configs
   without custom instructions go through :mod:`repro.serve` as
   ``cycle_limit_ok`` sweep jobs (executor parallelism + result cache,
   byte-identical to serial); custom-instruction candidates take an
   in-process path that re-derives the fusion rewrite
   deterministically and validates outputs against the golden
   reference.  A blown cycle budget is the ``budget`` status — a
   pruning signal, not a crash.
3. **campaign** — when reliability is an objective or constraint,
   still-alive candidates get a seeded fault-injection campaign (the
   ``vector`` engine is supported); its SDC rate joins the metrics.

Every evaluation (including resume reuse) is appended to
:attr:`CandidateEvaluator.log` in submission order, which is what the
report artifact stores and what a later ``--resume`` run replays.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.errors import ReproError, TuneError
from repro.fpga import estimate_costs
from repro.workloads import WorkloadSpec

from repro.autotune.archive import (
    STATUS_BUDGET, STATUS_FAILED, STATUS_INVALID, STATUS_OK,
    TuneArchive, TuneRecord,
)
from repro.autotune.space import SearchSpace

#: Default cycle budget per candidate (matches the serve default).
DEFAULT_CYCLE_BUDGET = 200_000_000

#: Metrics the FPGA cost model alone can score (no simulation).
MODEL_METRICS = ("slices", "block_rams", "clock_mhz")


def _time_ms(cycles: int, clock_mhz: float) -> float:
    return cycles / (clock_mhz * 1000.0)


class CandidateEvaluator:
    """Scores batches of space coordinates into :class:`TuneRecord`\\ s.

    ``known`` maps config digests to prior evaluation payloads (from a
    resume artifact); matching candidates are replayed without running
    anything, and land in the log exactly as a fresh evaluation would.
    """

    def __init__(self, spec: WorkloadSpec,
                 archive: TuneArchive,
                 cycle_budget: int = DEFAULT_CYCLE_BUDGET,
                 faults_n: int = 0,
                 faults_seed: int = 1,
                 campaign_engine: str = "auto",
                 validate: bool = True,
                 executor=None,
                 cache=None,
                 known: Optional[Dict[str, dict]] = None,
                 progress: Optional[Callable[[str], None]] = None):
        self.spec = spec
        self.archive = archive
        self.cycle_budget = cycle_budget
        self.faults_n = faults_n
        self.faults_seed = faults_seed
        self.campaign_engine = campaign_engine
        self.validate = validate
        self.executor = executor
        self.cache = cache
        self.known = dict(known or {})
        self.progress = progress
        metrics_wanted = set(archive.objectives) | {
            constraint.metric for constraint in archive.constraints}
        self.needs_campaign = "sdc_rate" in metrics_wanted
        if self.needs_campaign and faults_n < 1:
            raise TuneError(
                "sdc_rate is an objective or constraint but faults_n "
                "is 0: score reliability with --faults-n"
            )
        if self.needs_campaign and not faults_seed:
            raise TuneError("campaign seed must be non-zero")
        #: Every evaluation in submission order (report artifact rows).
        self.log: List[Dict[str, object]] = []
        self._memo: Dict[str, Tuple[str, Dict[str, float], str]] = {}

    # -- the batch driver ----------------------------------------------

    def evaluate_batch(self, space: SearchSpace,
                       indices: Sequence[int]) -> List[TuneRecord]:
        """Score ``indices`` (submission order preserved in the log).

        Batches are the determinism unit: all serve jobs of one phase
        are submitted together in index order, and
        :func:`repro.serve.run_jobs` returns them in input order, so
        the records (and the log) are identical no matter how many
        executor workers raced on them.
        """
        records: List[Optional[TuneRecord]] = []
        fresh: List[Tuple[int, TuneRecord, MachineConfig]] = []
        for position, index in enumerate(indices):
            config = space.config_at(index)
            if config is None:
                records.append(TuneRecord(
                    index=index, digest="", describe="(invalid)",
                    choices=space.choices_at(index),
                    status=STATUS_INVALID,
                    detail="rejected by MachineConfig validation"))
                continue
            digest = config.digest()
            record = TuneRecord(
                index=index, digest=digest,
                describe=config.describe(),
                choices=space.choices_at(index), status=STATUS_OK)
            replay = self._memo.get(digest)
            if replay is None and digest in self.known:
                prior = self.known[digest]
                replay = (prior["status"],
                          dict(prior.get("metrics", {})),
                          prior.get("detail", ""))
            if replay is not None:
                record.status, metrics, record.detail = replay
                record.metrics = dict(metrics)
                records.append(record)
                continue
            records.append(record)
            fresh.append((position, record, config))

        survivors = self._phase_model(fresh)
        survivors = self._phase_sweep(survivors)
        if self.needs_campaign:
            self._phase_campaign(survivors)

        for _position, record, _config in fresh:
            self._memo[record.digest] = (
                record.status, dict(record.metrics), record.detail)
        for record in records:
            self.log.append(record.to_payload())
        return list(records)

    # -- phase 1: the free cost model ----------------------------------

    def _phase_model(self, fresh):
        survivors = []
        for position, record, config in fresh:
            estimate, clock_mhz = estimate_costs(config)
            record.metrics.update({
                "slices": estimate.slices,
                "block_rams": estimate.block_rams,
                "clock_mhz": clock_mhz,
            })
            failed = [constraint for constraint in
                      self.archive.constraints
                      if constraint.metric in MODEL_METRICS
                      and not constraint.check(record.metrics)]
            if failed:
                # Still STATUS_OK — the archive's constraint screen
                # turns it into an infeasible disposition; we just
                # skipped paying for a simulation it cannot need.
                record.detail = ("pruned by model estimate: " + ", ".join(
                    constraint.describe() for constraint in failed))
                self._say(f"prune {record.describe} ({record.detail})")
                continue
            survivors.append((position, record, config))
        return survivors

    # -- phase 2: cycle counts -----------------------------------------

    def _phase_sweep(self, survivors):
        from repro.harness.runner import OUTCOME_OK

        served, inproc = [], []
        for entry in survivors:
            _position, _record, config = entry
            if config.custom_ops or (self.executor is None
                                     and self.cache is None):
                inproc.append(entry)
            else:
                served.append(entry)

        alive = []
        if served:
            from repro.serve import run_jobs, sweep_job

            jobs = [sweep_job(self.spec, config, validate=self.validate,
                              max_cycles=self.cycle_budget,
                              cycle_limit_ok=True)
                    for _position, _record, config in served]
            outcomes = run_jobs(jobs, executor=self.executor,
                                cache=self.cache)
            for (position, record, config), outcome in zip(served,
                                                           outcomes):
                if not outcome.ok:
                    record.status = STATUS_FAILED
                    record.detail = (f"{outcome.status}: "
                                     f"{outcome.error or 'job failed'}")
                    continue
                payload = outcome.payload
                if payload.get("outcome", OUTCOME_OK) != OUTCOME_OK:
                    self._truncate(record)
                    continue
                self._score_cycles(record, payload["cycles"])
                alive.append((position, record, config))

        for position, record, config in inproc:
            cycles = self._run_in_process(record, config)
            if cycles is not None:
                self._score_cycles(record, cycles)
                alive.append((position, record, config))
        alive.sort(key=lambda entry: entry[0])
        return alive

    def _score_cycles(self, record: TuneRecord, cycles: int) -> None:
        record.metrics["cycles"] = cycles
        record.metrics["time_ms"] = _time_ms(
            cycles, record.metrics["clock_mhz"])
        self._say(f"scored {record.describe}: {cycles} cycles")

    def _truncate(self, record: TuneRecord) -> None:
        record.status = STATUS_BUDGET
        record.metrics.pop("cycles", None)
        record.metrics.pop("time_ms", None)
        record.detail = (f"cycle budget of {self.cycle_budget} "
                         "exhausted; candidate pruned, not scored")
        self._say(f"budget {record.describe}")

    def _run_in_process(self, record: TuneRecord,
                        config: MachineConfig) -> Optional[int]:
        """Cycle-count one candidate locally; None if not fully scored."""
        from repro.harness.runner import OUTCOME_OK, run_on_epic

        try:
            if config.custom_ops:
                return self._run_custom(record, config)
            run = run_on_epic(self.spec, config, validate=self.validate,
                              max_cycles=self.cycle_budget,
                              cycle_limit_ok=True)
        except ReproError as error:
            record.status = STATUS_FAILED
            record.detail = str(error)
            return None
        if run.outcome != OUTCOME_OK:
            self._truncate(record)
            return None
        return run.cycles

    def _run_custom(self, record: TuneRecord,
                    config: MachineConfig) -> Optional[int]:
        """Score a custom-instruction candidate in-process.

        Re-derives the fusion rewrite from the workload source (the
        discovery pass is deterministic), cross-checks that it yields
        the very instructions the candidate's config carries, then
        compiles the *rewritten* module and validates the run against
        the golden reference.  Serve jobs cannot carry these configs
        (the op semantics callable is unserialisable), hence this path.
        """
        from repro.backend import compile_ir_to_epic
        from repro.core import EpicProcessor
        from repro.errors import CycleLimitExceeded
        from repro.explore.custominsn import discover_and_apply
        from repro.harness.runner import check_outputs
        from repro.lang.compile import compile_minic

        module = compile_minic(self.spec.source)
        mined = discover_and_apply(module,
                                   top_k=len(config.custom_ops),
                                   mem_words=self.spec.mem_words)
        wanted = [getattr(op, "mnemonic", None)
                  for op in config.custom_ops]
        if [op.mnemonic for op in mined] != wanted:
            raise TuneError(
                f"custom-op mining disagrees with the candidate: "
                f"mined {[op.mnemonic for op in mined]}, config "
                f"carries {wanted} — was the space built for another "
                "workload?"
            )
        # Freshly mined specs carry live semantics callables; their
        # contract (and so the config digest) is identical.
        run_config = config.with_changes(custom_ops=tuple(mined))
        compilation = compile_ir_to_epic(module, run_config)
        cpu = EpicProcessor(run_config, compilation.program,
                            mem_words=self.spec.mem_words)
        try:
            result = cpu.run(max_cycles=self.cycle_budget)
        except CycleLimitExceeded:
            self._truncate(record)
            return None
        if self.validate:
            def read_global(name: str, count: int):
                base = compilation.symbols[name]
                return [cpu.memory.read(base + i) for i in range(count)]

            machine = f"EPIC-{run_config.n_alus}ALU+custom"
            check_outputs(self.spec.name, machine, self.spec,
                          read_global, cpu.gpr.read(2))
        return result.cycles

    # -- phase 3: reliability campaigns --------------------------------

    def _phase_campaign(self, alive) -> None:
        """Attach an SDC rate to every still-alive candidate.

        Custom-instruction candidates are campaigned in-process on the
        source-compiled program (the lockstep checker does not apply
        the fusion rewrite); the fault stream is identical either way
        because it is drawn from (n, seed) alone.
        """
        served, inproc = [], []
        for entry in alive:
            _position, _record, config = entry
            if config.custom_ops or (self.executor is None
                                     and self.cache is None):
                inproc.append(entry)
            else:
                served.append(entry)

        if served:
            from repro.harness.faultcampaign import (
                report_from_results, result_from_payload,
            )
            from repro.serve import campaign_job, run_jobs

            jobs = [campaign_job(self.spec, config, self.faults_n,
                                 self.faults_seed,
                                 engine=self.campaign_engine)
                    for _position, _record, config in served]
            outcomes = run_jobs(jobs, executor=self.executor,
                                cache=self.cache)
            for (position, record, config), outcome in zip(served,
                                                           outcomes):
                if not outcome.ok:
                    record.status = STATUS_FAILED
                    record.detail = (f"campaign {outcome.status}: "
                                     f"{outcome.error or 'job failed'}")
                    continue
                results = [result_from_payload(entry) for entry
                           in outcome.payload["outcomes"]]
                report = report_from_results(
                    self.spec, config, self.faults_n, self.faults_seed,
                    outcome.payload["reference_cycles"], results)
                record.metrics["sdc_rate"] = report.sdc_rate
                self._say(f"campaigned {record.describe}: "
                          f"SDC {report.sdc_rate * 100:.1f}%")

        if inproc:
            from repro.harness.faultcampaign import run_campaign

            for _position, record, config in inproc:
                try:
                    report = run_campaign(
                        self.spec, config, self.faults_n,
                        self.faults_seed, engine=self.campaign_engine)
                except ReproError as error:
                    record.status = STATUS_FAILED
                    record.detail = f"campaign failed: {error}"
                    continue
                record.metrics["sdc_rate"] = report.sdc_rate
                self._say(f"campaigned {record.describe}: "
                          f"SDC {report.sdc_rate * 100:.1f}%")
                downgrade = (report.timing or {}).get(
                    "engine_downgrade_reason")
                if downgrade:
                    self._say(f"  vector engine downgraded to scalar "
                              f"for {record.describe}: {downgrade}")

    # -- misc ----------------------------------------------------------

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)
