"""Multi-objective design-space search over the serve tier (§3.3).

The paper's customisation story — "explore performance/area trade-offs
for a specific application" — as a *service*: a seeded candidate
generator over the :class:`~repro.config.MachineConfig` space
(:mod:`~repro.autotune.space`), pluggable deterministic search
strategies (:mod:`~repro.autotune.search`), a constraint-aware
incremental Pareto archive (:mod:`~repro.autotune.archive`), and an
evaluation layer that scores candidates through the job-serving
executors and result cache, with fault-injection campaigns pricing
reliability (:mod:`~repro.autotune.evaluate`).

Determinism is the contract end to end: identical seeds produce
byte-identical trajectories, logs and frontiers whether evaluations
run serially, on a process pool, or replay out of a warm cache — and a
search resumes from its own report artifact.
"""

from repro.autotune.archive import (
    Constraint,
    METRIC_SENSES,
    TuneArchive,
    TuneRecord,
    parse_constraints,
)
from repro.autotune.evaluate import CandidateEvaluator
from repro.autotune.search import (
    BATCH_SIZE,
    STRATEGIES,
    known_from_report,
    tune,
)
from repro.autotune.space import (
    Axis,
    SearchSpace,
    custom_ops_axis,
    field_axis,
    latency_axis,
    mine_custom_ops,
)

__all__ = [
    "Axis",
    "BATCH_SIZE",
    "CandidateEvaluator",
    "Constraint",
    "METRIC_SENSES",
    "STRATEGIES",
    "SearchSpace",
    "TuneArchive",
    "TuneRecord",
    "custom_ops_axis",
    "field_axis",
    "known_from_report",
    "latency_axis",
    "mine_custom_ops",
    "parse_constraints",
    "tune",
]
