"""``repro-tune``: multi-objective design-space search from the shell.

Examples::

    # Exhaustive sweep of a small space, cycles x slices frontier:
    repro-tune --bench DCT --quick --alus 1,2,4 --forwarding both

    # Fastest machine under 7000 slices with SDC below 1%:
    repro-tune --bench SHA --quick --strategy hill --budget 24 \\
        --objectives cycles,slices,sdc_rate --faults-n 50 \\
        --constraint "slices<=7000" --constraint "sdc_rate<0.01"

    # Parallel + cached, resumable (the report IS the checkpoint):
    repro-tune --bench DCT --quick --jobs 2 --cache /tmp/tune-cache \\
        --out report.json
    repro-tune --bench DCT --quick --resume report.json --out report2.json

The report artifact is deterministic for a given (space, strategy,
seed, settings): no timestamps, no host names, no wall-clock figures.
Timing lives behind ``--timing-out`` so two runs can be diffed
byte-for-byte.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import epic_config
from repro.errors import ReproError, TuneError
from repro.harness.cli import quick_specs
from repro.harness.tables import BENCHMARK_ORDER
from repro.workloads import WORKLOADS

from repro.autotune.archive import (
    METRIC_SENSES, TuneArchive, parse_constraints,
)
from repro.autotune.evaluate import (
    CandidateEvaluator, DEFAULT_CYCLE_BUDGET,
)
from repro.autotune.search import (
    BATCH_SIZE, STRATEGIES, known_from_report, tune,
)
from repro.autotune.space import (
    SearchSpace, custom_ops_axis, field_axis, latency_axis,
    mine_custom_ops,
)


def _int_list(text: str):
    return [int(part) for part in text.split(",") if part != ""]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Search the EPIC configuration space for Pareto-"
                    "optimal machines under constraints, with seeded, "
                    "resumable, byte-reproducible trajectories.",
    )
    parser.add_argument("--bench", default="DCT",
                        choices=list(BENCHMARK_ORDER),
                        help="workload to tune for")
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced benchmark input size")
    parser.add_argument("--strategy", default="exhaustive",
                        choices=list(STRATEGIES),
                        help="search strategy")
    parser.add_argument("--seed", type=int, default=1,
                        help="search seed (non-zero; same seed -> "
                             "byte-identical trajectory)")
    parser.add_argument("--budget", type=int, default=None,
                        help="max candidates to evaluate "
                             "(default: the whole space)")
    parser.add_argument("--batch-size", type=int, default=BATCH_SIZE,
                        help="candidates per evaluation batch (fixed "
                             "regardless of --jobs, for determinism)")
    # -- the space -----------------------------------------------------
    parser.add_argument("--alus", type=_int_list, default=[1, 2, 4],
                        metavar="LIST", help="ALU counts, e.g. 1,2,4")
    parser.add_argument("--btrs", type=_int_list, default=None,
                        metavar="LIST", help="branch-target register "
                        "counts, e.g. 4,8,16")
    parser.add_argument("--mem-banks", type=_int_list, default=None,
                        metavar="LIST",
                        help="external memory bank counts, e.g. 1,2,4")
    parser.add_argument("--forwarding", default="on",
                        choices=("on", "off", "both"),
                        help="result forwarding: fix it, or search both")
    parser.add_argument("--latency", action="append", default=[],
                        metavar="CLASS=LIST",
                        help="latency axis, e.g. --latency mul=1,3 "
                             "(repeatable)")
    parser.add_argument("--custom-ops", type=_int_list, default=None,
                        metavar="LIST",
                        help="custom-instruction counts to search, "
                             "e.g. 0,1,2 (mined from the workload)")
    # -- objectives and constraints ------------------------------------
    parser.add_argument("--objectives", default="cycles,slices",
                        metavar="LIST",
                        help="comma-separated objectives (known: "
                             f"{', '.join(sorted(METRIC_SENSES))})")
    parser.add_argument("--constraint", action="append", default=[],
                        metavar="EXPR",
                        help="constraint such as 'slices<=7000' or "
                             "'sdc_rate<0.01' (repeatable)")
    # -- evaluation settings -------------------------------------------
    parser.add_argument("--cycle-budget", type=int,
                        default=DEFAULT_CYCLE_BUDGET,
                        help="per-candidate cycle budget; candidates "
                             "that blow it are pruned, not failed")
    parser.add_argument("--faults-n", type=int, default=0,
                        help="fault injections per candidate (needed "
                             "when sdc_rate is scored)")
    parser.add_argument("--faults-seed", type=int, default=42,
                        help="fault-campaign seed")
    parser.add_argument("--campaign-engine", default="auto",
                        choices=("auto", "vector"),
                        help="campaign execution engine (vector = "
                             "batched lanes; byte-identical outcomes)")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip golden output validation (faster, "
                             "but a miscomputing machine could score)")
    # -- execution and artifacts ---------------------------------------
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="evaluate on N worker processes via "
                             "repro.serve (byte-identical to serial)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="result-cache directory (warm replays "
                             "are byte-identical)")
    parser.add_argument("--resume", metavar="REPORT", default=None,
                        help="prior report to resume from (same space "
                             "and settings required)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the JSON report artifact here")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report to stdout")
    parser.add_argument("--timing-out", metavar="PATH", default=None,
                        help="write wall-clock timing here (kept out "
                             "of the report so it stays diffable)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines on stderr")
    return parser


def build_space(args, spec) -> SearchSpace:
    axes = [field_axis("n_alus", args.alus)]
    if args.btrs:
        axes.append(field_axis("n_btrs", args.btrs))
    if args.mem_banks:
        axes.append(field_axis("n_mem_banks", args.mem_banks))
    if args.forwarding == "both":
        axes.append(field_axis("forwarding", (True, False)))
    base = epic_config()
    if args.forwarding == "off":
        base = base.with_changes(forwarding=False)
    for text in args.latency:
        op_class, _, values = text.partition("=")
        if not values:
            raise TuneError(
                f"--latency wants CLASS=LIST, got {text!r}")
        axes.append(latency_axis(op_class, _int_list(values)))
    if args.custom_ops:
        top_k = max(args.custom_ops)
        specs = mine_custom_ops(spec, top_k)
        if len(specs) < top_k:
            raise TuneError(
                f"only {len(specs)} custom instruction(s) could be "
                f"mined from {spec.name}, but --custom-ops asked "
                f"for up to {top_k}"
            )
        axes.append(custom_ops_axis(specs, args.custom_ops))
    return SearchSpace(base, axes)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    def say(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr)

    started = time.time()
    executor = None
    try:
        if args.quick:
            spec = quick_specs([args.bench])[0]
        else:
            spec = WORKLOADS[args.bench]()
        space = build_space(args, spec)
        objectives = [name for name in args.objectives.split(",") if name]
        archive = TuneArchive(
            objectives=objectives,
            constraints=parse_constraints(args.constraint))

        cache = None
        if args.jobs > 1:
            from repro.serve import SupervisedPool

            # Warm persistent workers: the DSE loop re-evaluates the
            # same workload across many configs, so candidate jobs ride
            # on workers whose compile caches are already populated.
            executor = SupervisedPool(jobs=args.jobs, warm=True)
        if args.cache:
            from repro.serve import ResultCache
            cache = ResultCache(args.cache)

        evaluator = CandidateEvaluator(
            spec, archive,
            cycle_budget=args.cycle_budget,
            faults_n=args.faults_n,
            faults_seed=args.faults_seed,
            campaign_engine=args.campaign_engine,
            validate=not args.no_validate,
            executor=executor, cache=cache,
            progress=say)
        if args.resume:
            with open(args.resume, "r", encoding="utf-8") as handle:
                prior = json.load(handle)
            settings = {
                "objectives": list(archive.objectives),
                "constraints": [c.describe()
                                for c in archive.constraints],
                "cycle_budget": args.cycle_budget,
                "faults_n": args.faults_n,
                "faults_seed": args.faults_seed,
                "campaign_engine": args.campaign_engine,
                "validate": not args.no_validate,
            }
            workload = {"name": spec.name,
                        "args": list(spec.instance_args)}
            evaluator.known = known_from_report(
                prior, space, settings, workload)
            say(f"resuming with {len(evaluator.known)} known "
                "evaluation(s)")

        report = tune(space, evaluator, archive,
                      strategy=args.strategy, seed=args.seed,
                      budget=args.budget, batch_size=args.batch_size,
                      progress=say)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"repro-tune: {error}", file=sys.stderr)
        return 1
    finally:
        if executor is not None:
            executor.close()

    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        say(f"report written to {args.out}")
    if args.json:
        print(rendered)
    else:
        say("")
        print(report["archive"]["explain"])
        for entry in report["archive"]["frontier"]:
            values = ", ".join(
                f"{name}={entry['metrics'][name]}"
                for name in archive.objectives)
            print(f"  {entry['describe']}: {values}")
    if args.timing_out:
        timing = {"seconds": round(time.time() - started, 3)}
        with open(args.timing_out, "w", encoding="utf-8") as handle:
            json.dump(timing, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
