"""Linear-scan register allocation with calling-convention pools.

Intervals are coarse (first definition to last use, extended to block
boundaries where the register is live-in/out), which is safe and simple.
Values live across a CALL pseudo are restricted to the callee-saved
pool; others prefer caller-saved registers (free in leaf functions) so
that prologue save/restore traffic stays minimal.  Spills go to frame
slots addressed off the stack pointer through two reserved scratch
registers; spill stores inherit the guard of the producing operation so
predication semantics survive spilling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.backend.mops import CALL, MBlock, MFunction, MOp, SpillRef, VR
from repro.errors import RegAllocError
from repro.isa.operands import Lit, Pred, Reg, PRED_TRUE
from repro.sched.convention import RegConvention
from repro.sched.liveness import compute_liveness


@dataclass
class _Interval:
    vr: VR
    start: int
    end: int
    crosses_call: bool = False
    reg: Optional[int] = None
    spill_slot: Optional[int] = None


@dataclass
class AllocationResult:
    """What the rest of the backend needs to know."""

    mapping: Dict[VR, Reg]
    spill_slots: int
    used_callee_saved: List[int]


def _build_intervals(mfunc: MFunction) -> Tuple[List[_Interval], List[int]]:
    liveness = compute_liveness(mfunc)
    position = 0
    ranges: Dict[VR, List[int]] = {}
    call_positions: List[int] = []

    def touch(vr: VR, at: int) -> None:
        entry = ranges.setdefault(vr, [at, at])
        entry[0] = min(entry[0], at)
        entry[1] = max(entry[1], at)

    for block in mfunc.blocks:
        block_start = position
        for mop in block.mops:
            for operand in mop.gpr_reads():
                if isinstance(operand, VR):
                    touch(operand, position)
            for operand in mop.gpr_writes():
                if isinstance(operand, VR):
                    touch(operand, position)
            if mop.mnemonic == CALL:
                call_positions.append(position)
            position += 1
        block_end = position - 1
        for vr in liveness.live_in[block.label]:
            touch(vr, block_start)
        for vr in liveness.live_out[block.label]:
            touch(vr, block_end)

    intervals = [
        _Interval(vr, start, end) for vr, (start, end) in ranges.items()
    ]
    for interval in intervals:
        interval.crosses_call = any(
            interval.start < call < interval.end for call in call_positions
        )
    intervals.sort(key=lambda interval: (interval.start, interval.end))
    return intervals, call_positions


class _Pool:
    """Round-robin free list over a fixed register set."""

    def __init__(self, registers: Tuple[int, ...]):
        self._free: List[int] = list(registers)
        self.members: Set[int] = set(registers)

    def take(self) -> Optional[int]:
        if self._free:
            return self._free.pop(0)
        return None

    def release(self, register: int) -> None:
        self._free.append(register)


def allocate_registers(mfunc: MFunction,
                       convention: RegConvention) -> AllocationResult:
    """Allocate all VRs in ``mfunc`` in place; inserts spill code."""
    intervals, _ = _build_intervals(mfunc)
    is_leaf = not mfunc.has_calls
    caller_pool = _Pool(convention.caller_pool(is_leaf))
    callee_pool = _Pool(convention.callee_saved)

    active: List[_Interval] = []
    spill_slots = 0
    used_callee: Set[int] = set()

    def release(interval: _Interval) -> None:
        if interval.reg is None:
            return
        if interval.reg in caller_pool.members:
            caller_pool.release(interval.reg)
        else:
            callee_pool.release(interval.reg)

    def pools_for(interval: _Interval) -> List[_Pool]:
        if interval.crosses_call:
            return [callee_pool]
        return [caller_pool, callee_pool]

    for interval in intervals:
        active = [a for a in active if a.end >= interval.start or
                  release(a) or False]
        register: Optional[int] = None
        for pool in pools_for(interval):
            register = pool.take()
            if register is not None:
                break
        if register is None:
            # Spill the active interval with the furthest end among those
            # whose register this interval could use; else spill this one.
            usable = (
                callee_pool.members if interval.crosses_call
                else caller_pool.members | callee_pool.members
            )
            candidates = [
                a for a in active
                if a.reg is not None and a.reg in usable
                and not (interval.crosses_call and a.reg not in
                         callee_pool.members)
            ]
            victim = max(candidates, key=lambda a: a.end, default=None)
            if victim is not None and victim.end > interval.end:
                interval.reg = victim.reg
                victim.reg = None
                victim.spill_slot = spill_slots
                spill_slots += 1
            else:
                interval.spill_slot = spill_slots
                spill_slots += 1
        else:
            interval.reg = register
        if interval.reg is not None and interval.reg in callee_pool.members:
            used_callee.add(interval.reg)
        active.append(interval)

    mapping: Dict[VR, Reg] = {}
    spilled: Dict[VR, int] = {}
    for interval in intervals:
        if interval.reg is not None:
            mapping[interval.vr] = Reg(interval.reg)
        else:
            assert interval.spill_slot is not None
            spilled[interval.vr] = interval.spill_slot

    if spilled:
        _insert_spill_code(mfunc, spilled, convention)
    for block in mfunc.blocks:
        for mop in block.mops:
            mop.rewrite_registers(mapping)

    mfunc.spill_slots = spill_slots
    return AllocationResult(
        mapping=mapping,
        spill_slots=spill_slots,
        used_callee_saved=sorted(used_callee),
    )


def _insert_spill_code(mfunc: MFunction, spilled: Dict[VR, int],
                       convention: RegConvention) -> None:
    """Rewrite spilled VRs through the reserved scratch registers.

    Reloads are plain loads from ``sp + slot``; stores after a definition
    inherit the defining op's guard.  Offsets are placeholders patched by
    frame construction (marker ``spill:<slot>`` on the inserted ops).
    """
    scratch_a, scratch_b = convention.scratch
    sp = Reg(convention.sp)

    for block in mfunc.blocks:
        rewritten: List[MOp] = []
        for mop in block.mops:
            if mop.mnemonic in (CALL, "__ENTER"):
                # Pseudo-op operands may outnumber the scratch registers;
                # refer to the frame slot directly and let expansion load
                # or store through the argument registers themselves.
                mop.args = [
                    SpillRef(spilled[a]) if isinstance(a, VR) and a in spilled
                    else a
                    for a in mop.args
                ]
                writes = [
                    operand for operand in mop.gpr_writes()
                    if isinstance(operand, VR) and operand in spilled
                ]
                if mop.mnemonic == CALL and writes:
                    scratch = Reg(scratch_a)
                    mop.rewrite_registers({writes[0]: scratch}, partial=True)
                    rewritten.append(mop)
                    rewritten.append(MOp(
                        "SW", dest1=scratch, src1=sp,
                        src2=Lit(spilled[writes[0]]),
                        target=f"spill:{spilled[writes[0]]}",
                    ))
                else:
                    rewritten.append(mop)
                continue
            reads = [
                operand for operand in mop.gpr_reads()
                if isinstance(operand, VR) and operand in spilled
            ]
            writes = [
                operand for operand in mop.gpr_writes()
                if isinstance(operand, VR) and operand in spilled
            ]
            if len(set(reads)) > 2:
                raise RegAllocError(
                    f"operation reads more than two spilled values: {mop}"
                )
            substitution: Dict[VR, Reg] = {}
            scratches = [Reg(scratch_a), Reg(scratch_b)]
            for vr in dict.fromkeys(reads):
                scratch = scratches.pop(0)
                substitution[vr] = scratch
                rewritten.append(MOp(
                    "LW", dest1=scratch, src1=sp,
                    src2=Lit(spilled[vr]),
                    target=f"spill:{spilled[vr]}",
                ))
            write_backs: List[MOp] = []
            for vr in dict.fromkeys(writes):
                scratch = substitution.get(vr)
                if scratch is None:
                    if not scratches:
                        raise RegAllocError(
                            f"operation needs too many scratch registers: {mop}"
                        )
                    scratch = scratches.pop(0)
                    substitution[vr] = scratch
                write_backs.append(MOp(
                    "SW", dest1=scratch, src1=sp,
                    src2=Lit(spilled[vr]),
                    guard=mop.guard,
                    target=f"spill:{spilled[vr]}",
                ))
            if substitution:
                mop.rewrite_registers(substitution, partial=True)
            rewritten.append(mop)
            rewritten.extend(write_backs)
        block.mops = rewritten
