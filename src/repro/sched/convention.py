"""Register calling conventions.

Neither the paper nor HPL-PD mandates a software convention; the
toolchain only needs compiler, assembler and simulator to agree.  Ours:

========  ============================  =========================
register  EPIC (n_gprs >= 16)           Armlet baseline (16 regs)
========  ============================  =========================
r0        hardwired zero                hardwired zero
r1        stack pointer                 stack pointer
r2        return value                  return value
r3        return address                return address
r4..r9    arguments (caller-saved)      r4..r7 arguments
r10,r11   spill scratch                 r14,r15 spill scratch
r12..mid  caller-saved temporaries      r8,r9 temporaries
mid..     callee-saved                  r10..r13 callee-saved
========  ============================  =========================

Caller-saved temporaries cost nothing in a prologue but die at calls;
callee-saved registers survive calls but must be saved by any function
that writes them.  The split matters: the hot kernels are leaf functions
with high register pressure, and a convention that makes a leaf save
fifty registers through the single load/store unit would swamp the very
parallelism the EPIC datapath provides.  Values live across a call are
restricted to the callee-saved pool; leaf functions may additionally
allocate into the argument registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class RegConvention:
    """Register roles for one target."""

    n_regs: int
    zero: int
    sp: int
    rv: int
    ra: int
    arg_regs: Tuple[int, ...]
    scratch: Tuple[int, int]         # reserved for spill reload/store
    temporaries: Tuple[int, ...]     # caller-saved, free in any function
    callee_saved: Tuple[int, ...]    # allocatable, saved by the callee

    def __post_init__(self) -> None:
        special = {self.zero, self.sp, self.rv, self.ra}
        special |= set(self.arg_regs) | set(self.scratch)
        pools = set(self.temporaries) | set(self.callee_saved)
        if special & pools:
            raise ConfigError("allocation pools overlap special registers")
        if set(self.temporaries) & set(self.callee_saved):
            raise ConfigError("temporaries overlap the callee-saved pool")
        for reg in sorted(special | pools):
            if not 0 <= reg < self.n_regs:
                raise ConfigError(f"register r{reg} outside the file")
        if len(self.arg_regs) < 1:
            raise ConfigError("need at least one argument register")
        if not self.callee_saved:
            raise ConfigError("need a non-empty callee-saved pool")

    def caller_pool(self, is_leaf: bool) -> Tuple[int, ...]:
        """Caller-saved registers allocatable in this function."""
        if is_leaf:
            return self.temporaries + self.arg_regs
        return self.temporaries

    @property
    def max_reg_args(self) -> int:
        return len(self.arg_regs)


def epic_convention(n_gprs: int) -> RegConvention:
    """Convention for an EPIC configuration with ``n_gprs`` registers.

    The allocatable range r12.. is split evenly between caller-saved
    temporaries and callee-saved registers.
    """
    if n_gprs < 16:
        raise ConfigError(
            "the code generator requires at least 16 general registers"
        )
    first = 12
    mid = first + (n_gprs - first) // 2
    return RegConvention(
        n_regs=n_gprs,
        zero=0, sp=1, rv=2, ra=3,
        arg_regs=(4, 5, 6, 7, 8, 9),
        scratch=(10, 11),
        temporaries=tuple(range(first, mid)),
        callee_saved=tuple(range(mid, n_gprs)),
    )


def armlet_convention() -> RegConvention:
    """Convention for the 16-register scalar baseline (APCS-flavoured)."""
    return RegConvention(
        n_regs=16,
        zero=0, sp=1, rv=2, ra=3,
        arg_regs=(4, 5, 6, 7),
        scratch=(14, 15),
        temporaries=(8, 9),
        callee_saved=(10, 11, 12, 13),
    )
