"""Virtual-register liveness over an :class:`~repro.backend.mops.MFunction`.

Classic backward dataflow at block granularity.  A *guarded* definition
(one executing under a predicate other than p0) is treated as a use-and-
maybe-def: it never kills liveness, because the write may be squashed at
run time and the previous value must survive (paper §2's predication
semantics)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.backend.mops import MBlock, MFunction, MOp, VR
from repro.errors import ScheduleError
from repro.isa.operands import PRED_TRUE


def successor_labels(block: MBlock, next_label: Optional[str]) -> List[str]:
    """Control-flow successors of a machine block, by label."""
    successors: List[str] = []
    falls_through = True
    # EPIC: branch targets live on the PBR that prepared the BTR.
    pbr_targets: Dict[int, str] = {}
    for mop in block.mops:
        if mop.mnemonic == "PBR" and mop.target is not None \
                and not mop.target.startswith(("alloca:", "spill:")):
            pbr_targets[mop.dest1.index] = mop.target
        elif mop.mnemonic in ("BR", "BRCT", "BRCF"):
            target = pbr_targets.get(mop.src1.index)
            if target is not None:
                successors.append(target)
            if mop.mnemonic == "BR":
                falls_through = False
        # Armlet (scalar baseline): branches carry their target directly.
        elif mop.mnemonic == "B":
            if mop.target is not None:
                successors.append(mop.target)
            falls_through = False
        elif mop.mnemonic.startswith("B") and mop.target is not None:
            successors.append(mop.target)  # conditional Bcc
        elif mop.mnemonic == "JR":
            falls_through = False
        elif mop.mnemonic in ("HALT", "__RET"):
            falls_through = False
    if falls_through and next_label is not None:
        successors.append(next_label)
    return successors


@dataclass
class LivenessInfo:
    """Per-block live-in/live-out sets of virtual registers."""

    live_in: Dict[str, Set[VR]] = field(default_factory=dict)
    live_out: Dict[str, Set[VR]] = field(default_factory=dict)


def _block_use_def(block: MBlock) -> Tuple[Set[VR], Set[VR]]:
    uses: Set[VR] = set()
    defs: Set[VR] = set()
    for mop in block.mops:
        for operand in mop.gpr_reads():
            if isinstance(operand, VR) and operand not in defs:
                uses.add(operand)
        guarded = mop.guard.index != PRED_TRUE
        for operand in mop.gpr_writes():
            if isinstance(operand, VR):
                if guarded and operand not in defs:
                    # Conditional write: the old value may survive.
                    uses.add(operand)
                if not guarded:
                    defs.add(operand)
    return uses, defs


def compute_liveness(mfunc: MFunction) -> LivenessInfo:
    labels = [block.label for block in mfunc.blocks]
    successors: Dict[str, List[str]] = {}
    for index, block in enumerate(mfunc.blocks):
        next_label = labels[index + 1] if index + 1 < len(labels) else None
        successors[block.label] = successor_labels(block, next_label)
        for succ in successors[block.label]:
            if succ not in labels:
                raise ScheduleError(
                    f"{mfunc.name}: branch to unknown label {succ!r}"
                )

    use_def = {block.label: _block_use_def(block) for block in mfunc.blocks}
    info = LivenessInfo(
        live_in={label: set() for label in labels},
        live_out={label: set() for label in labels},
    )
    changed = True
    while changed:
        changed = False
        for block in reversed(mfunc.blocks):
            label = block.label
            out: Set[VR] = set()
            for succ in successors[label]:
                out |= info.live_in[succ]
            uses, defs = use_def[label]
            new_in = uses | (out - defs)
            if out != info.live_out[label] or new_in != info.live_in[label]:
                info.live_out[label] = out
                info.live_in[label] = new_in
                changed = True
    return info
