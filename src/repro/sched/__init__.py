"""Static scheduling and register allocation (elcor's role, §4.1).

The scheduler performs the dependence analysis and resource-conflict
avoidance that EPIC moves from hardware to the compiler (§2): it builds
a dependence DAG per scheduling region, assigns each operation an issue
cycle under the machine description's functional-unit counts and
latencies, and emits issue groups.  Because the hardware does not
interlock, the schedule also guarantees that every result has landed
before the flow of control can reach a consumer — including across
basic-block boundaries (end-of-block latency padding).

Register allocation is a linear scan over the configured register file,
parameterised by a calling convention so the same allocator serves the
EPIC backend (64+ registers) and the SA-110 baseline (16 registers).
"""

from repro.sched.convention import RegConvention, epic_convention, armlet_convention
from repro.sched.liveness import LivenessInfo, compute_liveness
from repro.sched.regalloc import AllocationResult, allocate_registers
from repro.sched.listsched import schedule_function

__all__ = [
    "RegConvention",
    "epic_convention",
    "armlet_convention",
    "LivenessInfo",
    "compute_liveness",
    "AllocationResult",
    "allocate_registers",
    "schedule_function",
]
