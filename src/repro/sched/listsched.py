"""Resource-constrained list scheduling into issue groups.

This is the core of elcor's job (§4.1): "statically schedule the
instructions by performing dependence analysis and resource conflict
avoidance", driven by the machine description.

Model
=====

* Locations are ``("g", n)`` GPRs, ``("p", n)`` predicates, ``("b", n)``
  BTRs and the single conservative ``("mem",)`` location.  ``r0``/``p0``
  are hardwired and generate no dependences.
* Edges: true dependence with the producer's latency; anti dependence
  with latency 0 (same-cycle is legal — VLIW reads see pre-cycle state);
  output dependence with latency ``L1 - L2 + 1`` (the later write must
  land later).
* A block is split into *regions* at branch operations.  Ops never move
  across a branch; a region's ops all issue no later than its branch.
* The branch of a region issues no earlier than the landing cycle of
  every write in the block so far (``T + L - 1``): control never leaves
  a block while a write is in flight.  The same padding rule applies to
  fall-through block ends.  This is what makes per-block scheduling safe
  on hardware without interlocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.backend.mops import MBlock, MFunction, MOp
from repro.errors import ScheduleError
from repro.isa.opcodes import FuClass
from repro.isa.operands import Btr, Lit, Pred, Reg, PRED_TRUE
from repro.mdes import Mdes

_BRANCH_MNEMONICS = ("BR", "BRCT", "BRCF", "BRL", "HALT")

Location = Tuple


def _locations(mop: MOp) -> Tuple[List[Location], List[Location]]:
    """(reads, writes) location lists for one machine op."""
    reads: List[Location] = []
    writes: List[Location] = []

    def read_gpr(operand) -> None:
        if isinstance(operand, Reg) and operand.index != 0:
            reads.append(("g", operand.index))

    def read_any(operand) -> None:
        if isinstance(operand, Reg) and operand.index != 0:
            reads.append(("g", operand.index))
        elif isinstance(operand, Pred) and operand.index != PRED_TRUE:
            reads.append(("p", operand.index))
        elif isinstance(operand, Btr):
            reads.append(("b", operand.index))

    mnemonic = mop.mnemonic
    if mop.guard.index != PRED_TRUE:
        reads.append(("p", mop.guard.index))

    if mnemonic == "SW":
        read_gpr(mop.dest1)
        read_any(mop.src1)
        read_any(mop.src2)
        writes.append(("mem",))
        return reads, writes
    if mnemonic in ("LW", "LWS"):
        read_any(mop.src1)
        read_any(mop.src2)
        reads.append(("mem",))
        if isinstance(mop.dest1, Reg) and mop.dest1.index != 0:
            writes.append(("g", mop.dest1.index))
        return reads, writes
    if mnemonic == "PBR":
        writes.append(("b", mop.dest1.index))
        return reads, writes
    if mnemonic == "MOVGBP":
        read_any(mop.src1)
        writes.append(("b", mop.dest1.index))
        return reads, writes
    if mnemonic in ("BR", "BRCT", "BRCF", "BRL"):
        read_any(mop.src1)
        read_any(mop.src2)
        if mnemonic == "BRL" and isinstance(mop.dest1, Reg):
            writes.append(("g", mop.dest1.index))
        return reads, writes
    if mnemonic in ("HALT", "NOP"):
        return reads, writes

    # ALU / CMPP / MOVE / MOVI / custom ops.
    read_any(mop.src1)
    read_any(mop.src2)
    for dest in (mop.dest1, mop.dest2):
        if isinstance(dest, Reg) and dest.index != 0:
            writes.append(("g", dest.index))
        elif isinstance(dest, Pred) and dest.index != PRED_TRUE:
            writes.append(("p", dest.index))
    return reads, writes


@dataclass
class _Node:
    index: int
    mop: MOp
    reads: List[Location]
    writes: List[Location]
    latency: int
    fu: FuClass
    preds: List[Tuple[int, int]] = field(default_factory=list)  # (node, lat)
    succs: List[Tuple[int, int]] = field(default_factory=list)
    earliest: int = 0
    height: int = 0
    cycle: int = -1


class _ResourceTable:
    """Per-cycle functional-unit and issue-slot usage."""

    def __init__(self, mdes: Mdes):
        self.mdes = mdes
        self.slots: Dict[int, int] = {}
        self.units: Dict[Tuple[int, FuClass], int] = {}

    def fits(self, cycle: int, fu: FuClass) -> bool:
        if self.slots.get(cycle, 0) >= self.mdes.issue_width:
            return False
        if fu is FuClass.MISC:
            return True
        return self.units.get((cycle, fu), 0) < self.mdes.resource_count(fu)

    def take(self, cycle: int, fu: FuClass) -> None:
        self.slots[cycle] = self.slots.get(cycle, 0) + 1
        if fu is not FuClass.MISC:
            self.units[(cycle, fu)] = self.units.get((cycle, fu), 0) + 1


def _build_nodes(mops: Sequence[MOp], mdes: Mdes,
                 start_index: int) -> List[_Node]:
    nodes: List[_Node] = []
    for offset, mop in enumerate(mops):
        info = mdes.table.lookup(mop.mnemonic)
        reads, writes = _locations(mop)
        nodes.append(_Node(
            index=start_index + offset,
            mop=mop,
            reads=reads,
            writes=writes,
            latency=mdes.latency_of(info),
            fu=info.fu_class,
        ))
    return nodes


def _add_edges(nodes: List[_Node]) -> None:
    last_writer: Dict[Location, _Node] = {}
    readers: Dict[Location, List[_Node]] = {}
    for node in nodes:
        for loc in node.reads:
            writer = last_writer.get(loc)
            if writer is not None:
                node.preds.append((writer.index, writer.latency))
                writer.succs.append((node.index, writer.latency))
        for loc in node.writes:
            for reader in readers.get(loc, []):
                if reader is not node:
                    node.preds.append((reader.index, 0))
                    reader.succs.append((node.index, 0))
            writer = last_writer.get(loc)
            if writer is not None:
                lat = max(writer.latency - node.latency + 1, 0)
                node.preds.append((writer.index, lat))
                writer.succs.append((node.index, lat))
        for loc in node.reads:
            readers.setdefault(loc, []).append(node)
        for loc in node.writes:
            last_writer[loc] = node
            readers[loc] = []


def _compute_heights(nodes: List[_Node]) -> None:
    by_index = {node.index: node for node in nodes}
    for node in reversed(nodes):
        height = node.latency
        for succ_index, lat in node.succs:
            height = max(height, lat + by_index[succ_index].height)
        node.height = height


def _schedule_region(nodes: List[_Node], resources: _ResourceTable,
                     region_start: int,
                     land: Dict[Location, int]) -> int:
    """Assign cycles to all nodes; returns max issue cycle (or start-1)."""
    if not nodes:
        return region_start - 1
    _add_edges(nodes)
    _compute_heights(nodes)
    by_index = {node.index: node for node in nodes}

    for node in nodes:
        earliest = region_start
        for loc in node.reads:
            earliest = max(earliest, land.get(loc, 0))
        for loc in node.writes:
            earliest = max(earliest, land.get(loc, 0) - node.latency + 1)
        node.earliest = earliest

    unscheduled: Set[int] = {node.index for node in nodes}
    cycle = region_start
    max_cycle = region_start - 1
    guard = 0
    while unscheduled:
        guard += 1
        if guard > 1_000_000:  # pragma: no cover - defensive
            raise ScheduleError("list scheduler failed to converge")
        progress = False
        ready: List[_Node] = []
        for index in unscheduled:
            node = by_index[index]
            ok = True
            bound = node.earliest
            for pred_index, lat in node.preds:
                pred = by_index[pred_index]
                if pred.cycle < 0:
                    ok = False
                    break
                bound = max(bound, pred.cycle + lat)
            if ok and bound <= cycle:
                ready.append(node)
        ready.sort(key=lambda node: (-node.height, node.index))
        for node in ready:
            if resources.fits(cycle, node.fu):
                resources.take(cycle, node.fu)
                node.cycle = cycle
                unscheduled.discard(node.index)
                max_cycle = max(max_cycle, cycle)
                progress = True
        cycle += 1
    return max_cycle


def schedule_block(block: MBlock, mdes: Mdes) -> List[List[MOp]]:
    """Schedule one block; returns bundles indexed by cycle."""
    resources = _ResourceTable(mdes)
    land: Dict[Location, int] = {}
    placed: List[Tuple[int, MOp]] = []

    # Split into regions at branch operations.
    regions: List[Tuple[List[MOp], Optional[MOp]]] = []
    body: List[MOp] = []
    for mop in block.mops:
        if mop.mnemonic in _BRANCH_MNEMONICS:
            regions.append((body, mop))
            body = []
        else:
            body.append(mop)
    regions.append((body, None))

    current = 0
    finish = -1  # latest landing cycle of any write so far
    node_counter = 0
    for body, branch in regions:
        nodes = _build_nodes(body, mdes, node_counter)
        node_counter += len(nodes) + 1
        max_issue = _schedule_region(nodes, resources, current, land)
        for node in nodes:
            placed.append((node.cycle, node.mop))
            for loc in node.writes:
                land[loc] = node.cycle + node.latency
            finish = max(finish, node.cycle + node.latency - 1)

        if branch is None:
            current = max(max_issue, finish, current - 1) + 1
            continue

        info = mdes.table.lookup(branch.mnemonic)
        reads, writes = _locations(branch)
        earliest = max(current, max_issue, finish)
        for loc in reads:
            earliest = max(earliest, land.get(loc, 0))
        cycle = earliest
        while not resources.fits(cycle, info.fu_class):
            cycle += 1
        resources.take(cycle, info.fu_class)
        placed.append((cycle, branch))
        for loc in writes:
            land[loc] = cycle + mdes.latency_of(info)
            finish = max(finish, cycle + mdes.latency_of(info) - 1)
        current = cycle + 1

    total_cycles = max(current, finish + 1)
    if placed:
        total_cycles = max(total_cycles,
                           max(cycle for cycle, _ in placed) + 1)
    bundles: List[List[MOp]] = [[] for _ in range(max(total_cycles, 1))]
    for cycle, mop in placed:
        bundles[cycle].append(mop)
    return bundles


def schedule_function(mfunc: MFunction,
                      mdes: Mdes) -> List[Tuple[str, List[List[MOp]]]]:
    """Schedule every block; returns (label, bundles) in layout order."""
    result = []
    for block in mfunc.blocks:
        for mop in block.mops:
            if mop.is_pseudo:
                raise ScheduleError(
                    f"pseudo op reached the scheduler: {mop}"
                )
        result.append((block.label, schedule_block(block, mdes)))
    return result
