"""Configuration sweeps: cycles x area x time per design point."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional

from repro.config import MachineConfig
from repro.fpga import estimate_clock_mhz, estimate_resources
from repro.harness.runner import run_on_epic
from repro.workloads import WorkloadSpec


@dataclass
class DesignPoint:
    """One evaluated configuration."""

    config: MachineConfig
    cycles: int
    slices: int
    block_rams: int
    clock_mhz: float

    @property
    def time_seconds(self) -> float:
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def area_delay(self) -> float:
        """Classic area-delay product (slices x seconds)."""
        return self.slices * self.time_seconds

    def __str__(self) -> str:
        return (
            f"{self.config.describe()}: {self.cycles} cycles, "
            f"{self.slices} slices, {self.time_seconds * 1e3:.3f} ms"
        )


def evaluate_config(spec: WorkloadSpec, config: MachineConfig,
                    validate: bool = True) -> DesignPoint:
    """Compile, simulate and cost one configuration on one workload."""
    run = run_on_epic(spec, config, validate=validate)
    estimate = estimate_resources(config)
    return DesignPoint(
        config=config,
        cycles=run.cycles,
        slices=estimate.slices,
        block_rams=estimate.block_rams,
        clock_mhz=estimate_clock_mhz(config),
    )


def sweep_configs(spec: WorkloadSpec, configs: Iterable[MachineConfig],
                  validate: bool = True,
                  progress: Optional[Callable[[str], None]] = None
                  ) -> List[DesignPoint]:
    """Evaluate every configuration on the workload."""
    points = []
    for config in configs:
        if progress:
            progress(config.describe())
        points.append(evaluate_config(spec, config, validate=validate))
    return points
