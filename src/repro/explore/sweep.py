"""Configuration sweeps: cycles x area x time per design point."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional

from repro.config import MachineConfig
from repro.fpga import estimate_costs
from repro.harness.runner import run_on_epic
from repro.workloads import WorkloadSpec


@dataclass
class DesignPoint:
    """One evaluated configuration."""

    config: MachineConfig
    cycles: int
    slices: int
    block_rams: int
    clock_mhz: float

    @property
    def time_seconds(self) -> float:
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def area_delay(self) -> float:
        """Classic area-delay product (slices x seconds)."""
        return self.slices * self.time_seconds

    def __str__(self) -> str:
        return (
            f"{self.config.describe()}: {self.cycles} cycles, "
            f"{self.slices} slices, {self.time_seconds * 1e3:.3f} ms"
        )


def evaluate_config(spec: WorkloadSpec, config: MachineConfig,
                    validate: bool = True) -> DesignPoint:
    """Compile, simulate and cost one configuration on one workload.

    The FPGA cost model is memoised by config digest
    (:func:`repro.fpga.estimate_costs`), so sweeping many
    area-identical candidates prices the hardware once.
    """
    run = run_on_epic(spec, config, validate=validate)
    estimate, clock_mhz = estimate_costs(config)
    return DesignPoint(
        config=config,
        cycles=run.cycles,
        slices=estimate.slices,
        block_rams=estimate.block_rams,
        clock_mhz=clock_mhz,
    )


def sweep_configs(spec: WorkloadSpec, configs: Iterable[MachineConfig],
                  validate: bool = True,
                  progress: Optional[Callable[[str], None]] = None,
                  on_result: Optional[
                      Callable[[DesignPoint], None]] = None,
                  executor=None,
                  cache=None) -> List[DesignPoint]:
    """Evaluate every configuration on the workload.

    The returned list is always in ``configs`` order.  ``on_result``
    fires once per completed design point (completion order under a
    parallel executor) for live progress reporting.

    ``progress`` has **uniform semantics on every execution path**
    (serial, executor, cache replay): one ``"[done/total] <config>"``
    line per completed evaluation, in completion order, with a
    ``": <status>"`` suffix on the executor path when a job failed.

    Passing ``executor`` (a :mod:`repro.serve` executor) and/or
    ``cache`` (a :class:`~repro.serve.ResultCache`) routes each
    evaluation through the job-serving subsystem; the resulting points
    are byte-identical to the serial path's.
    """
    configs = list(configs)
    total = len(configs)
    done = [0]

    def report(config: MachineConfig, status: str = "") -> None:
        done[0] += 1
        if progress:
            suffix = f": {status}" if status else ""
            progress(f"[{done[0]}/{total}] {config.describe()}{suffix}")

    if executor is None and cache is None:
        points = []
        for config in configs:
            point = evaluate_config(spec, config, validate=validate)
            points.append(point)
            report(config)
            if on_result is not None:
                on_result(point)
        return points

    from repro.serve import raise_for_failures, run_jobs, sweep_job

    jobs = [sweep_job(spec, config, validate=validate)
            for config in configs]

    def rebuild(outcome) -> DesignPoint:
        payload = outcome.payload
        return DesignPoint(
            config=configs[outcome.index],
            cycles=payload["cycles"],
            slices=payload["slices"],
            block_rams=payload["block_rams"],
            clock_mhz=payload["clock_mhz"],
        )

    def handle(outcome) -> None:
        report(configs[outcome.index],
               "" if outcome.ok else outcome.status)
        if not outcome.ok:
            return
        if on_result is not None:
            on_result(rebuild(outcome))

    outcomes = run_jobs(jobs, executor=executor, cache=cache,
                        on_result=handle)
    raise_for_failures(outcomes)
    return [rebuild(outcome) for outcome in outcomes]
