"""Design-space exploration (paper §1, §3.3).

"Such customisable designs provide a platform for designers to explore
performance/area trade-offs for a specific application using different
implementations."  This package automates that loop: sweep configuration
parameters, measure cycles on the target application with the
cycle-accurate core, estimate area with the FPGA model, and extract the
Pareto frontier.
"""

from repro.explore.sweep import DesignPoint, sweep_configs, evaluate_config
from repro.explore.pareto import ParetoArchive, dominates, pareto_frontier
from repro.explore.reliability import ReliabilityPoint, reliability_sweep
from repro.explore.custominsn import (
    FusionCandidate,
    FusionPattern,
    apply_fusions,
    discover_and_apply,
    find_fusion_candidates,
    profile_module,
)

__all__ = [
    "DesignPoint",
    "sweep_configs",
    "evaluate_config",
    "pareto_frontier",
    "ParetoArchive",
    "dominates",
    "ReliabilityPoint",
    "reliability_sweep",
    "FusionCandidate",
    "FusionPattern",
    "apply_fusions",
    "discover_and_apply",
    "find_fusion_candidates",
    "profile_module",
]
