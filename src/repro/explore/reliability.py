"""Reliability-aware design-space exploration.

ByoRISC-style DSE tooling (PAPERS.md) puts every cost of a
customisation decision in one loop; this module adds vulnerability to
the cycles x slices x MHz sweep: each design point gets a seeded
fault-injection campaign, so an ALU-count or protection choice can be
priced in silent-data-corruption rate alongside its slice overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.config import MachineConfig
from repro.fpga import estimate_costs
from repro.harness.faultcampaign import CampaignReport, run_campaign
from repro.workloads import WorkloadSpec


@dataclass
class ReliabilityPoint:
    """One design point with both area and vulnerability attached."""

    config: MachineConfig
    slices: int
    block_rams: int
    clock_mhz: float
    cycles: int
    report: CampaignReport

    @property
    def sdc_rate(self) -> float:
        return self.report.sdc_rate

    @property
    def detected_rate(self) -> float:
        return self.report.detected_rate

    @property
    def masked_rate(self) -> float:
        return self.report.masked_rate

    def __str__(self) -> str:
        protection = (f"rf={self.config.regfile_protection},"
                      f"mem={self.config.memory_protection}")
        return (
            f"{self.config.describe()} [{protection}]: "
            f"{self.slices} slices, SDC {self.sdc_rate * 100:.1f}%, "
            f"detected {self.detected_rate * 100:.1f}%"
        )


def reliability_sweep(spec: WorkloadSpec,
                      configs: Iterable[MachineConfig],
                      n: int = 50, seed: int = 1,
                      progress: Optional[Callable[[str], None]] = None,
                      on_result: Optional[
                          Callable[[ReliabilityPoint], None]] = None,
                      executor=None,
                      cache=None) -> List[ReliabilityPoint]:
    """Campaign every configuration on the workload.

    The same seed is used for every design point, so two points differ
    only where the machine actually behaves differently — protection
    sweeps (none vs parity vs ecc) see the *same* fault stream.

    The returned list is always in ``configs`` order; ``on_result``
    fires per completed design point.  ``executor``/``cache`` route
    each campaign through :mod:`repro.serve` (one job per design
    point — sharding *within* a campaign is :func:`run_campaign`'s
    job), with byte-identical reports guaranteed.
    """
    configs = list(configs)
    if executor is None and cache is None:
        points: List[ReliabilityPoint] = []
        for config in configs:
            if progress is not None:
                progress(f"campaigning {config.describe()}")
            report = run_campaign(spec, config, n, seed, progress=progress)
            point = _build_point(config, report)
            points.append(point)
            if on_result is not None:
                on_result(point)
        return points

    from repro.harness.faultcampaign import (
        report_from_results, result_from_payload,
    )
    from repro.serve import campaign_job, raise_for_failures, run_jobs

    jobs = [campaign_job(spec, config, n, seed) for config in configs]

    def rebuild(outcome) -> ReliabilityPoint:
        config = configs[outcome.index]
        results = [result_from_payload(entry)
                   for entry in outcome.payload["outcomes"]]
        report = report_from_results(
            spec, config, n, seed,
            outcome.payload["reference_cycles"], results)
        return _build_point(config, report)

    def handle(outcome) -> None:
        if not outcome.ok:
            return
        if progress is not None:
            progress(f"campaigned {configs[outcome.index].describe()}")
        if on_result is not None:
            on_result(rebuild(outcome))

    outcomes = run_jobs(jobs, executor=executor, cache=cache,
                        on_result=handle)
    raise_for_failures(outcomes)
    return [rebuild(outcome) for outcome in outcomes]


def _build_point(config: MachineConfig,
                 report: CampaignReport) -> ReliabilityPoint:
    estimate, clock_mhz = estimate_costs(config)
    return ReliabilityPoint(
        config=config,
        slices=estimate.slices,
        block_rams=estimate.block_rams,
        clock_mhz=clock_mhz,
        cycles=report.reference_cycles,
        report=report,
    )
