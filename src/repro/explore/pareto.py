"""Pareto analysis of multi-objective trade-offs.

Two entry points share one dominance kernel:

* :func:`pareto_frontier` — the batch API: hand it a finished list of
  points, get the non-dominated subset back.
* :class:`ParetoArchive` — the incremental API: insert points one at a
  time and keep a live frontier.  This is what a search loop needs: a
  design-space autotuner (:mod:`repro.autotune`) scores candidates as
  they arrive and must know *now* whether a point survived, without
  re-scanning history.

Both accept **arbitrary point types**: a point is anything the
objective callables can consume — a
:class:`~repro.explore.sweep.DesignPoint`, a tuple, a dataclass from
another subsystem.  All objectives are minimised; wrap a
maximised quantity in a negation (``lambda p: -p.clock_mhz``).
"""

from __future__ import annotations

from typing import Callable, Generic, List, Sequence, Tuple, TypeVar

Point = TypeVar("Point")

#: Default objectives, matching the classic performance/area sweep:
#: execution time and slice count, both minimised.  They are duck-typed
#: (any point with ``time_seconds`` and ``slices`` works), not tied to
#: ``DesignPoint``.
DEFAULT_OBJECTIVES: Tuple[Callable, ...] = (
    lambda p: p.time_seconds,
    lambda p: float(p.slices),
)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when value tuple ``a`` dominates ``b`` (all minimised).

    Domination requires ``a`` to be no worse in every objective and
    strictly better in at least one; equal tuples therefore never
    dominate each other, and a tie on a single axis alone cannot
    dominate.
    """
    return all(x <= y for x, y in zip(a, b)) \
        and any(x < y for x, y in zip(a, b))


class ParetoArchive(Generic[Point]):
    """An incremental non-dominated archive (all objectives minimised).

    :meth:`insert` costs one dominance scan over the current frontier
    (never over history), evaluates the objectives exactly once per
    point, and keeps the archive exactly equal to the non-dominated
    subset of everything inserted so far — the incremental and batch
    semantics provably agree because dominance is transitive.

    Duplicate points (equal in every objective) never dominate each
    other, so all copies survive; surviving points keep insertion
    order.
    """

    def __init__(self, objectives: Sequence[Callable[[Point], float]]
                 = DEFAULT_OBJECTIVES):
        if not objectives:
            raise ValueError("at least one objective is required")
        self.objectives = tuple(objectives)
        self._points: List[Point] = []
        self._values: List[Tuple[float, ...]] = []
        self.inserted = 0
        self.rejected = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._points)

    def values_of(self, point: Point) -> Tuple[float, ...]:
        """The point's objective-value tuple (one call per objective)."""
        return tuple(f(point) for f in self.objectives)

    def insert(self, point: Point,
               values: Tuple[float, ...] = None) -> bool:
        """Offer a point to the archive.

        Returns ``True`` if the point joined the frontier (evicting any
        incumbents it now dominates) and ``False`` if an incumbent
        dominates it.  Pass precomputed ``values`` to skip re-running
        expensive objective callables.
        """
        if values is None:
            values = self.values_of(point)
        for incumbent in self._values:
            if dominates(incumbent, values):
                self.rejected += 1
                return False
        survivors = [index for index, incumbent in enumerate(self._values)
                     if not dominates(values, incumbent)]
        if len(survivors) != len(self._points):
            self.evicted += len(self._points) - len(survivors)
            self._points = [self._points[index] for index in survivors]
            self._values = [self._values[index] for index in survivors]
        self._points.append(point)
        self._values.append(tuple(values))
        self.inserted += 1
        return True

    def entries(self) -> List[Tuple[Point, Tuple[float, ...]]]:
        """Current frontier as (point, values) pairs, insertion order."""
        return list(zip(self._points, self._values))

    def frontier(self) -> List[Point]:
        """Current frontier sorted by the first objective (stable, so
        points tying on it keep insertion order)."""
        order = sorted(range(len(self._points)),
                       key=lambda index: self._values[index][0])
        return [self._points[index] for index in order]


def pareto_frontier(points: Sequence[Point],
                    objectives: Sequence[Callable[[Point], float]]
                    = DEFAULT_OBJECTIVES) -> List[Point]:
    """Non-dominated points (all objectives minimised), batch form.

    A point is dominated when another point is no worse in every
    objective and strictly better in at least one.  Duplicate points
    (equal in every objective) never dominate each other, so all copies
    survive; ties on a single axis likewise cannot dominate.  An empty
    input yields an empty frontier.  The result is sorted by the first
    objective (stable: ties keep input order).

    Objective callables are evaluated exactly once per point (they may
    be arbitrarily expensive — a re-simulation, a model query).
    Implemented on :class:`ParetoArchive`, so the batch and incremental
    APIs can never drift apart.
    """
    archive: ParetoArchive = ParetoArchive(objectives)
    for point in points:
        archive.insert(point)
    return archive.frontier()
