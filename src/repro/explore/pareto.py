"""Pareto analysis of performance/area trade-offs."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.explore.sweep import DesignPoint


def pareto_frontier(points: Sequence[DesignPoint],
                    objectives: Tuple[Callable[[DesignPoint], float], ...] = (
                        lambda p: p.time_seconds,
                        lambda p: float(p.slices),
                    )) -> List[DesignPoint]:
    """Non-dominated points (all objectives minimised).

    A point is dominated when another point is no worse in every
    objective and strictly better in at least one.
    """
    frontier: List[DesignPoint] = []
    for candidate in points:
        candidate_values = [f(candidate) for f in objectives]
        dominated = False
        for other in points:
            if other is candidate:
                continue
            other_values = [f(other) for f in objectives]
            if all(o <= c for o, c in zip(other_values, candidate_values)) \
                    and any(o < c for o, c in
                            zip(other_values, candidate_values)):
                dominated = True
                break
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda point: objectives[0](point))
    return frontier
