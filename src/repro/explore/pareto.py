"""Pareto analysis of performance/area trade-offs."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.explore.sweep import DesignPoint


def pareto_frontier(points: Sequence[DesignPoint],
                    objectives: Tuple[Callable[[DesignPoint], float], ...] = (
                        lambda p: p.time_seconds,
                        lambda p: float(p.slices),
                    )) -> List[DesignPoint]:
    """Non-dominated points (all objectives minimised).

    A point is dominated when another point is no worse in every
    objective and strictly better in at least one.  Duplicate points
    (equal in every objective) never dominate each other, so all copies
    survive; ties on a single axis likewise cannot dominate.  An empty
    input yields an empty frontier.

    Objective callables are evaluated exactly once per point (they may
    be arbitrarily expensive — a re-simulation, a model query), making
    the scan O(n²) comparisons over precomputed value tuples.
    """
    evaluated = [tuple(f(point) for f in objectives) for point in points]
    frontier: List[DesignPoint] = []
    frontier_keys: List[tuple] = []
    for candidate, candidate_values in zip(points, evaluated):
        dominated = False
        for other_values in evaluated:
            if all(o <= c for o, c in zip(other_values, candidate_values)) \
                    and any(o < c for o, c in
                            zip(other_values, candidate_values)):
                dominated = True
                break
        if not dominated:
            frontier.append(candidate)
            frontier_keys.append(candidate_values)
    order = sorted(range(len(frontier)), key=lambda i: frontier_keys[i][0])
    return [frontier[i] for i in order]
