"""Automatic custom-instruction generation (paper §6, implemented).

"Current and future work includes ... supporting automatic generation
of custom instructions."  This module closes that loop:

1. **profile** — run the program on the golden IR interpreter with
   per-instruction execution counts;
2. **discover** — find dataflow-adjacent pairs of pure binary operations
   where the intermediate value has exactly one consumer and the fused
   operation needs at most two register sources (constants are baked
   into the pattern, matching how a synthesised functional unit would
   hard-wire them);
3. **synthesize** — emit a :class:`~repro.isa.CustomOpSpec` (hardware
   semantics + slice estimate) and a MiniC-independent IR *fallback
   function*, so the transformed program still runs everywhere;
4. **rewrite** — replace each matched pair with a call to the fallback;
   on a configuration carrying the spec, the EPIC instruction selector
   intrinsifies that call into the single fused operation.

The result: ``discover_and_apply`` takes a module and returns the specs
to add to a :class:`~repro.config.MachineConfig` — the §3.3 "replace a
group of frequently-used instructions" workflow, automated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.instructions import BinOp, Call, Instr
from repro.ir.module import Block, Function, Module
from repro.ir.values import Const, Value, VReg
from repro.isa.custom import CustomOpSpec
from repro.isa.semantics import ALU_SEMANTICS
from repro.ir.interp import Interpreter

_SEM = {
    "add": "ADD", "sub": "SUB", "mul": "MUL",
    "and": "AND", "or": "OR", "xor": "XOR",
    "shl": "SHL", "shr": "SHR", "shra": "SHRA",
}

#: Operand roles inside a fused pattern: source registers or a baked
#: constant.
_SRC0, _SRC1 = "s0", "s1"

#: Estimated slice cost per fused pattern, by constituent op.
_SLICE_COST = {
    "add": 60, "sub": 60, "and": 20, "or": 20, "xor": 25,
    "shl": 90, "shr": 90, "shra": 95, "mul": 140,
}


@dataclass(frozen=True)
class FusionPattern:
    """A fusible (inner, outer) operation shape with operand roles.

    ``roles`` gives, in order, the roles of (inner.a, inner.b,
    outer.other): each is ``"s0"``/``"s1"`` (a register source) or an
    ``int`` (a baked constant).  ``inner_position`` records whether the
    inner result feeds the outer op's left (0) or right (1) operand.
    """

    inner_op: str
    outer_op: str
    inner_position: int
    roles: Tuple

    @property
    def mnemonic(self) -> str:
        def role_tag(role) -> str:
            if isinstance(role, int):
                return f"K{role & 0xFFFFFFFF:X}"
            return role.upper()

        tags = "_".join(role_tag(role) for role in self.roles)
        return (f"F_{self.inner_op}_{self.outer_op}_"
                f"{self.inner_position}_{tags}").upper()

    @property
    def n_sources(self) -> int:
        return len({role for role in self.roles if not isinstance(role, int)})

    def evaluate(self, s0: int, s1: int, mask: int, width: int = 32) -> int:
        values = []
        for role in self.roles:
            if isinstance(role, int):
                values.append(role & mask)
            else:
                values.append(s0 if role == _SRC0 else s1)
        inner = ALU_SEMANTICS[_SEM[self.inner_op]](values[0], values[1],
                                                   width)
        if self.inner_position == 0:
            return ALU_SEMANTICS[_SEM[self.outer_op]](inner, values[2], width)
        return ALU_SEMANTICS[_SEM[self.outer_op]](values[2], inner, width)

    def to_spec(self, latency: int = 1) -> CustomOpSpec:
        pattern = self

        slices = 40 + _SLICE_COST.get(self.inner_op, 60) \
            + _SLICE_COST.get(self.outer_op, 60)
        return CustomOpSpec(
            mnemonic=self.mnemonic,
            func=lambda a, b, mask: pattern.evaluate(a, b, mask),
            latency=latency,
            slices=slices,
            description=(
                f"fused {self.inner_op}/{self.outer_op} "
                f"(auto-generated)"
            ),
        )


@dataclass
class FusionCandidate:
    """One ranked pattern with its dynamic payoff."""

    pattern: FusionPattern
    dynamic_count: int
    static_count: int

    @property
    def saved_ops(self) -> int:
        """Each fusion removes one dynamic operation (and issue slot)."""
        return self.dynamic_count


def profile_module(module: Module, entry: str = "main",
                   mem_words: int = 1 << 16) -> Counter:
    """Execution counts per (function, block, instruction index)."""
    interpreter = Interpreter(module, mem_words=mem_words)
    interpreter.profile = Counter()
    interpreter.call(entry)
    return interpreter.profile


def _use_counts(function: Function) -> Counter:
    counts: Counter = Counter()
    for instr in function.instructions():
        for value in instr.uses():
            if isinstance(value, VReg):
                counts[value] += 1
    return counts


def _role_of(value: Value, sources: List[Value]):
    """Map an operand onto a source slot or a baked constant."""
    if isinstance(value, Const):
        return value.value
    if value in sources:
        return _SRC0 if sources.index(value) == 0 else _SRC1
    if len(sources) >= 2:
        return None
    sources.append(value)
    return _SRC0 if len(sources) == 1 else _SRC1


def _match_pair(inner: BinOp, outer: BinOp,
                inner_position: int) -> Optional[Tuple[FusionPattern,
                                                       List[Value]]]:
    if inner.op not in _SEM or outer.op not in _SEM:
        return None
    sources: List[Value] = []
    roles = []
    for operand in (inner.a, inner.b):
        role = _role_of(operand, sources)
        if role is None:
            return None
        roles.append(role)
    other = outer.b if inner_position == 0 else outer.a
    role = _role_of(other, sources)
    if role is None:
        return None
    roles.append(role)
    pattern = FusionPattern(inner.op, outer.op, inner_position,
                            tuple(roles))
    return pattern, sources


def find_fusion_candidates(module: Module,
                           profile: Optional[Counter] = None,
                           entry: str = "main",
                           min_dynamic_count: int = 2,
                           ) -> List[FusionCandidate]:
    """Rank fusible operation pairs by dynamic execution count."""
    if profile is None:
        profile = profile_module(module, entry)
    patterns: Dict[FusionPattern, List[int]] = {}

    for function in module.functions.values():
        uses = _use_counts(function)
        for block in function.blocks:
            defs_here: Dict[VReg, Tuple[int, BinOp]] = {}
            for index, instr in enumerate(block.instrs):
                if not isinstance(instr, BinOp):
                    for reg in instr.defs():
                        defs_here.pop(reg, None)
                    continue
                for position, operand in enumerate((instr.a, instr.b)):
                    if not isinstance(operand, VReg):
                        continue
                    producer = defs_here.get(operand)
                    if producer is None or uses[operand] != 1:
                        continue
                    match = _match_pair(producer[1], instr, position)
                    if match is None:
                        continue
                    pattern, _ = match
                    count = profile.get(
                        (function.name, block.name, index), 0
                    )
                    patterns.setdefault(pattern, []).append(count)
                    break  # one fusion per consumer
                defs_here[instr.dst] = (index, instr)

    candidates = [
        FusionCandidate(
            pattern=pattern,
            dynamic_count=sum(counts),
            static_count=len(counts),
        )
        for pattern, counts in patterns.items()
        if sum(counts) >= min_dynamic_count
    ]
    candidates.sort(key=lambda c: (-c.dynamic_count, c.pattern.mnemonic))
    return candidates


def _build_fallback(module: Module, pattern: FusionPattern) -> str:
    """Add the software-fallback IR function for one pattern."""
    name = pattern.mnemonic.lower()
    if name in module.functions:
        return name
    function = Function(name=name, params=[])
    s0 = function.new_vreg("a")
    s1 = function.new_vreg("b")
    function.params = [s0, s1]

    def as_value(role) -> Value:
        if isinstance(role, int):
            return Const(role)
        return s0 if role == _SRC0 else s1

    inner_dst = function.new_vreg("inner")
    result = function.new_vreg("out")
    inner = BinOp(pattern.inner_op, inner_dst,
                  as_value(pattern.roles[0]), as_value(pattern.roles[1]))
    other = as_value(pattern.roles[2])
    if pattern.inner_position == 0:
        outer = BinOp(pattern.outer_op, result, inner_dst, other)
    else:
        outer = BinOp(pattern.outer_op, result, other, inner_dst)
    from repro.ir.instructions import Ret

    function.blocks = [Block("entry", [inner, outer, Ret(result)])]
    module.add_function(function)
    return name


def apply_fusions(module: Module,
                  candidates: Sequence[FusionCandidate]) -> int:
    """Rewrite matched pairs into calls to fallback functions.

    Returns the number of rewrites.  Compile the module with a
    configuration whose ``custom_ops`` includes ``c.pattern.to_spec()``
    for each applied candidate and the calls become single fused EPIC
    operations; everywhere else the fallback executes.
    """
    chosen = {candidate.pattern for candidate in candidates}
    rewrites = 0
    fallback_names = {}
    for pattern in chosen:
        fallback_names[pattern] = _build_fallback(module, pattern)

    for function in module.functions.values():
        if function.name in fallback_names.values():
            continue
        uses = _use_counts(function)
        for block in function.blocks:
            defs_here: Dict[VReg, Tuple[int, BinOp]] = {}
            for index, instr in enumerate(list(block.instrs)):
                if not isinstance(instr, BinOp):
                    for reg in instr.defs():
                        defs_here.pop(reg, None)
                    continue
                replaced = False
                for position, operand in enumerate((instr.a, instr.b)):
                    if not isinstance(operand, VReg):
                        continue
                    producer = defs_here.get(operand)
                    if producer is None or uses[operand] != 1:
                        continue
                    match = _match_pair(producer[1], instr, position)
                    if match is None or match[0] not in chosen:
                        continue
                    pattern, sources = match
                    while len(sources) < 2:
                        sources.append(Const(0))
                    block.instrs[index] = Call(
                        fallback_names[pattern], list(sources), instr.dst
                    )
                    rewrites += 1
                    replaced = True
                    break
                if replaced:
                    # The destination is now produced by a call; drop any
                    # stale BinOp producer entry so later consumers never
                    # fuse against it.
                    defs_here.pop(instr.dst, None)
                else:
                    defs_here[instr.dst] = (index, instr)
    return rewrites


def discover_and_apply(module: Module, top_k: int = 2,
                       entry: str = "main",
                       mem_words: int = 1 << 16) -> List[CustomOpSpec]:
    """The full §6 loop: profile, pick the top-k patterns, rewrite.

    Returns the CustomOpSpecs to install in the machine configuration.
    The dead inner operations left behind by the rewrite are removed by
    the standard DCE pass (run `optimize_module` afterwards).
    """
    profile = profile_module(module, entry, mem_words)
    candidates = find_fusion_candidates(module, profile, entry)[:top_k]
    if not candidates:
        return []
    apply_fusions(module, candidates)
    from repro.ir.passes import optimize_module

    optimize_module(module)
    return [candidate.pattern.to_spec() for candidate in candidates]
