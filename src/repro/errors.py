"""Exception hierarchy for the EPIC reproduction toolkit.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one type at a tool boundary.  Sub-hierarchies mirror the
major subsystems: configuration, encoding, assembly, compilation,
scheduling and simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`~repro.config.MachineConfig`."""


class EncodingError(ReproError):
    """Instruction encode/decode failure (field overflow, bad opcode...)."""


class AsmError(ReproError):
    """Assembler failure, annotated with a source location when known."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class CompileError(ReproError):
    """MiniC front-end or IR lowering failure."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class IRError(ReproError):
    """Malformed IR detected by the verifier or a pass."""


class ScheduleError(ReproError):
    """The scheduler produced (or was given) an illegal schedule."""


class RegAllocError(ReproError):
    """Register allocation could not complete (e.g. too few registers)."""


class SimulationError(ReproError):
    """Runtime fault inside a simulator (bad memory access, bad opcode)."""

    def __init__(self, message: str, cycle: int = -1, pc: int = -1):
        context = []
        if cycle >= 0:
            context.append(f"cycle={cycle}")
        if pc >= 0:
            context.append(f"pc={pc:#x}")
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(f"{message}{suffix}")
        self.cycle = cycle
        self.pc = pc


class MdesError(ReproError):
    """Machine-description construction or parsing failure."""


class WorkloadError(ReproError):
    """Workload construction/input-generation failure."""
