"""Exception hierarchy for the EPIC reproduction toolkit.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one type at a tool boundary.  Sub-hierarchies mirror the
major subsystems: configuration, encoding, assembly, compilation,
scheduling and simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`~repro.config.MachineConfig`."""


class EncodingError(ReproError):
    """Instruction encode/decode failure (field overflow, bad opcode...)."""


class AsmError(ReproError):
    """Assembler failure, annotated with a source location when known."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class CompileError(ReproError):
    """MiniC front-end or IR lowering failure."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class IRError(ReproError):
    """Malformed IR detected by the verifier or a pass."""


class ScheduleError(ReproError):
    """The scheduler produced (or was given) an illegal schedule."""


class RegAllocError(ReproError):
    """Register allocation could not complete (e.g. too few registers)."""


class SimulationError(ReproError):
    """Runtime fault inside a simulator (bad memory access, bad opcode).

    Always carries ``cycle`` and ``pc`` attributes; ``-1`` means the
    context is unknown (e.g. a load-time error).  Errors raised from deep
    inside a storage structure are annotated with the issuing cycle/PC by
    the core via :meth:`annotate`.
    """

    def __init__(self, message: str, cycle: int = -1, pc: int = -1):
        self.raw_message = message
        self.cycle = cycle
        self.pc = pc
        super().__init__(self._format())

    def _format(self) -> str:
        context = []
        if self.cycle >= 0:
            context.append(f"cycle={self.cycle}")
        if self.pc >= 0:
            context.append(f"pc={self.pc:#x}")
        suffix = f" [{', '.join(context)}]" if context else ""
        return f"{self.raw_message}{suffix}"

    def annotate(self, cycle: int, pc: int) -> "SimulationError":
        """Fill in missing cycle/PC context and re-render the message."""
        if self.cycle < 0:
            self.cycle = cycle
        if self.pc < 0:
            self.pc = pc
        self.args = (self._format(),)
        return self


class CycleLimitExceeded(SimulationError):
    """The run exceeded its ``max_cycles`` budget without halting."""

    def __init__(self, message: str, cycle: int = -1, pc: int = -1,
                 limit: int = 0):
        self.limit = limit
        super().__init__(message, cycle, pc)


class HangDetected(CycleLimitExceeded):
    """The watchdog fired: execution ran far past its expected length.

    Raised when a run blows through the *watchdog* budget (typically a
    small multiple of the fault-free cycle count) rather than the outer
    ``max_cycles`` safety net — the signature of a fault-induced livelock
    or runaway loop.  Fault-injection campaigns classify this as the
    *hung* outcome.
    """


#: Architectural trap causes (see :class:`TrapError`).
TRAP_ILLEGAL_INSTRUCTION = "illegal-instruction"
TRAP_OOB_LOAD = "oob-load"
TRAP_OOB_STORE = "oob-store"
TRAP_REGISTER_OVERFLOW = "register-port-overflow"
TRAP_PARITY = "parity-error"

TRAP_CAUSES = frozenset({
    TRAP_ILLEGAL_INSTRUCTION,
    TRAP_OOB_LOAD,
    TRAP_OOB_STORE,
    TRAP_REGISTER_OVERFLOW,
    TRAP_PARITY,
})


class TrapError(SimulationError):
    """An architectural trap: the hardware *detected* something wrong.

    Carries the trap ``cause`` (one of :data:`TRAP_CAUSES`), the issuing
    ``pc`` and ``cycle``, and the bundle ``slot`` when known.  How a trap
    is handled is a :class:`~repro.config.MachineConfig` policy
    (``halt`` / ``squash-bundle`` / ``record-and-continue``); under the
    non-halting policies traps are recorded on the processor instead of
    propagating.
    """

    def __init__(self, message: str, cause: str,
                 cycle: int = -1, pc: int = -1, slot: int = -1):
        self.cause = cause
        self.slot = slot
        super().__init__(message, cycle, pc)

    def _format(self) -> str:
        context = []
        if self.cycle >= 0:
            context.append(f"cycle={self.cycle}")
        if self.pc >= 0:
            context.append(f"pc={self.pc:#x}")
        if self.slot >= 0:
            context.append(f"slot={self.slot}")
        suffix = f" [{', '.join(context)}]" if context else ""
        return f"trap({self.cause}): {self.raw_message}{suffix}"

    def annotate(self, cycle: int, pc: int, slot: int = -1) -> "TrapError":
        if self.slot < 0:
            self.slot = slot
        super().annotate(cycle, pc)
        return self


class MdesError(ReproError):
    """Machine-description construction or parsing failure."""


class WorkloadError(ReproError):
    """Workload construction/input-generation failure."""


class TuneError(ReproError):
    """Autotuner failure: a malformed search space or constraint, an
    incompatible resume artifact, or objectives the evaluation settings
    cannot score."""


class ServeError(ReproError):
    """Job-serving failure: an unserialisable job spec, a malformed
    batch file, a corrupt cache record, or a job that did not finish
    (crash, timeout, or in-job error) surfaced by an executor."""


class InfraError(ServeError):
    """The serving *infrastructure* failed, as opposed to the job.

    A job error means the evaluation itself raised; an infrastructure
    error means the fabric around it — process spawning, the submission
    queue, the daemon — could not do its part.  The distinction matters
    for retry policy: job errors are deterministic and never retried,
    infrastructure errors are environmental and often transient.
    """


class SpawnError(InfraError):
    """Worker-process creation failed (fork/spawn refused by the OS).

    Only raised when the pool is configured *not* to degrade to serial
    in-process execution; carries the original OS error message.
    """


class QueueFullError(InfraError):
    """The daemon's bounded submission queue rejected a batch.

    Back-pressure, not failure: ``retry_after`` tells the client how
    many seconds to wait before resubmitting (the daemon surfaces it as
    an HTTP 429 with a ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class QuotaExceededError(QueueFullError):
    """One client holds too many pending jobs; others still get in."""

    def __init__(self, message: str, client: str,
                 retry_after: float = 1.0):
        self.client = client
        super().__init__(message, retry_after)


class DaemonError(InfraError):
    """Daemon lifecycle or protocol failure (bad request, wait timeout,
    submission after drain, unreachable or misbehaving server)."""
