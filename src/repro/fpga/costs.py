"""Digest-memoised front door to the FPGA cost model.

Design-space searches evaluate many candidates that are *area-identical*
(a latency or trap-policy change leaves the datapath alone), and even a
single sweep costs every config once per caller — the serial sweep, the
serve worker and the reliability sweep each used to recompute
:func:`~repro.fpga.resource_model.estimate_resources` and
:func:`~repro.fpga.timing_model.estimate_clock_mhz` from scratch.  Both
models are pure functions of the configuration, and
:meth:`MachineConfig.digest` is exactly the key that makes two configs
interchangeable to them, so one process-wide memo serves every caller.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config import MachineConfig
from repro.fpga.resource_model import ResourceEstimate, estimate_resources
from repro.fpga.timing_model import estimate_clock_mhz

#: Bound on memo entries; a long-running daemon exploring an unbounded
#: config stream must not grow without limit.  Eviction is FIFO — the
#: memo is a cost saver, not a correctness structure.
_MEMO_CAPACITY = 4096

_MEMO: Dict[str, Tuple[ResourceEstimate, float]] = {}


def estimate_costs(config: MachineConfig) -> Tuple[ResourceEstimate, float]:
    """``(resources, clock_mhz)`` for a config, memoised by digest.

    ``ResourceEstimate`` is a frozen dataclass and the clock a float,
    so sharing one instance across callers is safe.
    """
    key = config.digest()
    cached = _MEMO.get(key)
    if cached is None:
        cached = (estimate_resources(config), estimate_clock_mhz(config))
        if len(_MEMO) >= _MEMO_CAPACITY:
            _MEMO.pop(next(iter(_MEMO)))
        _MEMO[key] = cached
    return cached


def cost_memo_len() -> int:
    """Current memo occupancy (tests and telemetry)."""
    return len(_MEMO)


def clear_cost_memo() -> None:
    """Drop all memoised entries (tests)."""
    _MEMO.clear()
