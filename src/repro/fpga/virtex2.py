"""Xilinx Virtex-II device catalogue (the paper's target family).

"Xilinx Virtex II series devices, each containing up to [33,792]
configurable logic slices and up to [3] megabits of distributed
configurable memory, are chosen as the target technology" (§5).
Capacities below are from the Virtex-II data sheet (DS031).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.fpga.resource_model import ResourceEstimate


@dataclass(frozen=True)
class Virtex2Device:
    name: str
    slices: int
    block_rams: int
    mult18x18: int


VIRTEX2_DEVICES: Dict[str, Virtex2Device] = {
    device.name: device
    for device in (
        Virtex2Device("xc2v250", 1536, 24, 24),
        Virtex2Device("xc2v500", 3072, 32, 32),
        Virtex2Device("xc2v1000", 5120, 40, 40),
        Virtex2Device("xc2v1500", 7680, 48, 48),
        Virtex2Device("xc2v2000", 10752, 56, 56),
        Virtex2Device("xc2v3000", 14336, 96, 96),
        Virtex2Device("xc2v4000", 23040, 120, 120),
        Virtex2Device("xc2v6000", 33792, 144, 144),
        Virtex2Device("xc2v8000", 46592, 168, 168),
    )
}


def fits_on(estimate: ResourceEstimate, device: Virtex2Device,
            utilisation_cap: float = 0.9) -> bool:
    """Whether a design plausibly places and routes on ``device``."""
    return (
        estimate.slices <= device.slices * utilisation_cap
        and estimate.block_rams <= device.block_rams
        and estimate.mult18x18 <= device.mult18x18
    )


def smallest_device(estimate: ResourceEstimate) -> Virtex2Device:
    """Smallest catalogue device the estimate fits on (or the largest)."""
    for device in sorted(VIRTEX2_DEVICES.values(), key=lambda d: d.slices):
        if fits_on(estimate, device):
            return device
    return max(VIRTEX2_DEVICES.values(), key=lambda d: d.slices)
