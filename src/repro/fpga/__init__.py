"""FPGA resource and timing model (paper §5.1).

Stands in for Xilinx ISE place-and-route on the Virtex-II parts the
paper targets.  The model is analytic, calibrated to the published
numbers: designs with 1-4 ALUs occupy 4181/6779/9367/11955 slices (each
ALU ≈ 2600 slices); the register file maps to SelectRAM block RAM so
growing it costs block RAM, not slices; multiplication uses the on-chip
MULT18x18 blocks; and the 41.8 MHz critical path is essentially
independent of the ALU count because ALUs sit in parallel.
"""

from repro.fpga.resource_model import ResourceEstimate, estimate_resources
from repro.fpga.timing_model import estimate_clock_mhz
from repro.fpga.costs import clear_cost_memo, cost_memo_len, estimate_costs
from repro.fpga.virtex2 import Virtex2Device, VIRTEX2_DEVICES, fits_on

__all__ = [
    "ResourceEstimate",
    "estimate_resources",
    "estimate_clock_mhz",
    "estimate_costs",
    "cost_memo_len",
    "clear_cost_memo",
    "Virtex2Device",
    "VIRTEX2_DEVICES",
    "fits_on",
]
