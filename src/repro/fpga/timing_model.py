"""Clock-rate model.

The paper's prototype closes timing at 41.8 MHz and reports that
"varying the number of ALUs has little impact on the critical path; so
is the case of enlarging the register file" — the ALUs sit side by side
and the register file is block RAM behind a 4x-clock controller.  The
model therefore starts from 41.8 MHz and applies only second-order
effects: routing congestion from more parallel ALUs, multiplexer depth
from a wider issue window, and carry-chain length from a wider datapath.
"""

from __future__ import annotations

from repro.config import MachineConfig

#: Calibration point: the paper's 4-ALU, 32-bit, issue-4 prototype.
_BASE_MHZ = 41.8
_BASE_ALUS = 4
_BASE_ISSUE = 4
_BASE_WIDTH = 32

#: Second-order sensitivities (fractional slowdown per unit).
_ALU_ROUTING_PENALTY = 0.004      # per extra ALU beyond the base design
_ISSUE_MUX_PENALTY = 0.010        # per extra issue slot
_WIDTH_EXPONENT = 0.25            # carry-chain scaling ~ width^0.25


#: Extra pipelining shortens the fetch/decode/issue critical path;
#: returns diminish as the register-file controller (already at 4x the
#: core clock) becomes the limit.
_PIPELINE_GAIN = 0.20
_PIPELINE_DIMINISH = 0.04


def estimate_clock_mhz(config: MachineConfig) -> float:
    """Achievable clock (MHz) for a configuration on Virtex-II."""
    mhz = _BASE_MHZ
    extra_stages = config.pipeline_stages - 2
    if extra_stages:
        mhz *= (1.0 + _PIPELINE_GAIN * extra_stages
                - _PIPELINE_DIMINISH * extra_stages ** 2)
    mhz *= 1.0 - _ALU_ROUTING_PENALTY * max(0, config.n_alus - _BASE_ALUS)
    mhz *= 1.0 - _ISSUE_MUX_PENALTY * max(0, config.issue_width - _BASE_ISSUE)
    mhz *= (_BASE_WIDTH / config.datapath_width) ** _WIDTH_EXPONENT
    # Narrower issue windows shave a little mux depth.
    mhz *= 1.0 + 0.005 * max(0, _BASE_ISSUE - config.issue_width)
    return round(mhz, 2)
