"""Analytic Virtex-II slice/BRAM/multiplier model.

Calibration targets (paper §5.1):

* 1/2/3/4-ALU designs: 4181 / 6779 / 9367 / ~11955 slices — a fixed
  base of ~1590 slices plus ~2591 per ALU;
* "each individual ALU occupies around 2600 slices";
* "the register file is mapped into SelectRam ... increasing the size of
  register file has negligible effects on number of slices";
* "multiplication is supported by on-chip block multiplier".

The per-ALU budget is apportioned across feature groups so that the
§3.3 customisations (dropping divide, dropping shifts, narrowing the
datapath) shrink the estimate the way removing that logic would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import AluFeature, MachineConfig

# -- calibrated constants (slices, 32-bit datapath) ------------------------

#: Fixed datapath infrastructure (Fetch/Decode/Issue, write-back, LSU,
#: CMPU, BRU, register-file controller).  Sums to 1590 at the paper's
#: defaults (issue width 4).
_FDI_PER_ISSUE = 160
_WB_PER_ISSUE = 40
_LSU = 230
_CMPU = 170
_BRU_BASE = 120
_BRU_PER_BTR_WORD = 2        # BTR file lives in fabric registers
_REGFILE_CONTROLLER = 240

#: Per-ALU budget by feature group; totals 2591 with all features on.
_ALU_DIVIDER = 1040
_ALU_SHIFTER = 650
_ALU_CORE = 780              # add/sub/logic/min/max and result muxing
_ALU_MUL_GLUE = 121          # interface to the MULT18x18 blocks

#: Predicate registers are 1-bit fabric flip-flops (2 per slice).
_SLICES_PER_PRED = 0.5

#: Virtex-II block RAM capacity in bits.
_BRAM_BITS = 18 * 1024

#: SEU-protection overheads (reliability subsystem).  Parity is an XOR
#: tree per port; SEC-DED ECC needs a Hamming encoder on the write path
#: and a syndrome decoder + correction mux on each read path.  The
#: register file has two block-RAM copies (four ports total); memory
#: protection is per external bank.
_REGFILE_PARITY_SLICES = 48
_REGFILE_ECC_SLICES = 310
_MEM_PARITY_SLICES_PER_BANK = 22
_MEM_ECC_SLICES_PER_BANK = 95


def _check_bits(width: int, protection: str) -> int:
    """Extra storage bits per protected word."""
    if protection == "parity":
        return 1
    if protection == "ecc":
        # SEC-DED Hamming: r parity bits with 2**r >= width + r + 1,
        # plus one overall parity bit for double-error detection.
        r = 1
        while (1 << r) < width + r + 1:
            r += 1
        return r + 1
    return 0


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated resource usage of one configuration."""

    slices: int
    block_rams: int
    mult18x18: int
    breakdown: Dict[str, int]

    def __str__(self) -> str:
        return (
            f"{self.slices} slices, {self.block_rams} BRAM, "
            f"{self.mult18x18} MULT18x18"
        )


def _alu_slices(config: MachineConfig) -> int:
    scale = config.datapath_width / 32.0
    slices = _ALU_CORE * scale
    if config.has_feature(AluFeature.DIVIDE):
        slices += _ALU_DIVIDER * scale
    if config.has_feature(AluFeature.SHIFT):
        slices += _ALU_SHIFTER * scale
    if config.has_feature(AluFeature.MULTIPLY):
        slices += _ALU_MUL_GLUE * scale
    for spec in config.custom_ops:
        slices += spec.slices * scale
    return int(round(slices))


def estimate_resources(config: MachineConfig) -> ResourceEstimate:
    """Estimate slices, block RAMs and multipliers for a configuration."""
    scale = config.datapath_width / 32.0
    breakdown: Dict[str, int] = {}
    breakdown["fetch_decode_issue"] = int(round(
        _FDI_PER_ISSUE * config.issue_width * scale))
    if config.pipeline_stages > 2:
        # Extra pipeline registers across the issue-width datapath.
        breakdown["pipeline_registers"] = int(round(
            _WB_PER_ISSUE * config.issue_width * scale
            * (config.pipeline_stages - 2)))
    breakdown["write_back"] = int(round(
        _WB_PER_ISSUE * config.issue_width * scale))
    breakdown["lsu"] = int(round(_LSU * scale))
    breakdown["cmpu"] = int(round(_CMPU * scale))
    breakdown["bru"] = int(round(
        (_BRU_BASE + _BRU_PER_BTR_WORD * config.n_btrs) * scale))
    breakdown["regfile_controller"] = _REGFILE_CONTROLLER
    breakdown["predicate_file"] = int(round(
        _SLICES_PER_PRED * config.n_preds))
    breakdown["alus"] = _alu_slices(config) * config.n_alus

    if config.regfile_protection == "parity":
        breakdown["regfile_protection"] = int(round(
            _REGFILE_PARITY_SLICES * scale))
    elif config.regfile_protection == "ecc":
        breakdown["regfile_protection"] = int(round(
            _REGFILE_ECC_SLICES * scale))
    if config.memory_protection == "parity":
        breakdown["memory_protection"] = (
            _MEM_PARITY_SLICES_PER_BANK * config.n_mem_banks)
    elif config.memory_protection == "ecc":
        breakdown["memory_protection"] = (
            _MEM_ECC_SLICES_PER_BANK * config.n_mem_banks)

    slices = sum(breakdown.values())

    # Register file: dual-port SelectRAM, two copies so the 4x-clock
    # controller can service independent read streams.  Protection
    # widens each stored word by its check bits.
    word_bits = (config.datapath_width
                 + _check_bits(config.datapath_width,
                               config.regfile_protection))
    regfile_bits = config.n_gprs * word_bits
    block_rams = 2 * max(1, -(-regfile_bits // _BRAM_BITS))

    mult18x18 = 0
    if config.has_feature(AluFeature.MULTIPLY):
        per_alu = max(1, (config.datapath_width // 18 + 1) ** 2)
        mult18x18 = per_alu * config.n_alus

    return ResourceEstimate(
        slices=slices,
        block_rams=block_rams,
        mult18x18=mult18x18,
        breakdown=breakdown,
    )
