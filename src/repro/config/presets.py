"""Named configurations used throughout the evaluation.

The paper evaluates four EPIC instances (1, 2, 3 and 4 ALUs, everything
else at defaults) against the StrongARM SA-110 at 100 MHz.  These helpers
construct exactly those design points.
"""

from __future__ import annotations

from typing import Iterator

from repro.config.machine import MachineConfig

#: Paper clock rates (§5): the EPIC prototype runs at 41.8 MHz, the
#: SA-110 comparison point at 100 MHz.
EPIC_CLOCK_MHZ = 41.8
SA110_CLOCK_MHZ = 100.0

#: The paper's default parameterisation (§3.3): 4 ALUs, 64 GPRs, 32
#: predicate registers, 16 branch target registers, 32-bit datapath,
#: 4 instructions per issue.
DEFAULT_CONFIG = MachineConfig()


def epic_config(**overrides) -> MachineConfig:
    """The paper-default EPIC configuration with optional overrides."""
    if not overrides:
        return DEFAULT_CONFIG
    return DEFAULT_CONFIG.with_changes(**overrides)


def epic_with_alus(n_alus: int, **overrides) -> MachineConfig:
    """One of the paper's evaluated design points (1..4 ALUs)."""
    return DEFAULT_CONFIG.with_changes(n_alus=n_alus, **overrides)


def sweep_alus(low: int = 1, high: int = 4, **overrides) -> Iterator[MachineConfig]:
    """Yield the ALU-count sweep evaluated in §5 (1..4 ALUs)."""
    for n_alus in range(low, high + 1):
        yield epic_with_alus(n_alus, **overrides)
