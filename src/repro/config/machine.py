"""The machine configuration object (paper §3.3).

The paper's customisable EPIC description supports these parameters,
"instantiated in the configuration header file":

* number of ALU units
* number of general purpose registers
* number of predicate registers
* number of branch target registers
* number of registers each instruction can use
* number of instructions per issue (constrained to 1..4 by memory
  bandwidth)
* width of datapath and registers
* functionality of the ALU

:class:`MachineConfig` is the Python equivalent of that header file.  It is
immutable (a frozen dataclass) so one config can safely be shared by the
compiler, assembler, simulator and FPGA model.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Tuple

from repro.errors import ConfigError

#: Version of the :meth:`MachineConfig.canonical` schema.  Bump whenever
#: a field is added, removed, or its canonical rendering changes — the
#: version is hashed into :meth:`MachineConfig.digest`, so bumping it
#: invalidates every digest-keyed artifact (result caches, batch files)
#: built under the old schema.
CONFIG_DIGEST_VERSION = 1


class AluFeature(enum.Enum):
    """Optional functionality groups of the ALU (paper §3.3).

    "ALUs do not need to support division if this operation is not
    required by the particular application program."  Dropping a feature
    removes its opcodes from the ISA, shrinks the FPGA area estimate and
    makes the compiler refuse (or software-expand) the operation.
    """

    MULTIPLY = "multiply"
    DIVIDE = "divide"
    SHIFT = "shift"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AluFeature.{self.name}"


_ALL_ALU_FEATURES = frozenset(AluFeature)

#: Architectural trap handling policies (reliability subsystem):
#: ``halt`` stops the machine on the first trap (raising
#: :class:`~repro.errors.TrapError`), ``squash-bundle`` discards the
#: trapping bundle's effects and continues at the next bundle, and
#: ``record-and-continue`` logs the trap and keeps going.
TRAP_POLICIES = ("halt", "squash-bundle", "record-and-continue")

#: Storage protection schemes for the register file and data memory:
#: ``parity`` detects single-bit upsets on read (raising a parity trap),
#: ``ecc`` (SEC-DED Hamming) corrects them silently.  Both cost slices
#: (and, for the block-RAM register file, wider words) in the FPGA
#: resource model.
PROTECTION_SCHEMES = ("none", "parity", "ecc")

#: Memory-bandwidth bound from §3.3: "the number of instructions per issue
#: is constrained between one and four" (4 external 32-bit banks at 2x
#: clock provide 256 bits = four 64-bit instructions per cycle).
MAX_ISSUE_WIDTH = 4


@dataclass(frozen=True)
class MachineConfig:
    """Compile-time parameters of one EPIC processor instance.

    Defaults follow the paper: 4 ALUs, 64 general-purpose registers, 32
    predicate registers, 16 branch-target registers, 32-bit datapath,
    4 instructions per issue.
    """

    n_alus: int = 4
    n_gprs: int = 64
    n_preds: int = 32
    n_btrs: int = 16
    issue_width: int = 4
    datapath_width: int = 32
    #: Registers each instruction can name (paper lists this separately
    #: from n_gprs; it bounds the encoded register-index field width).
    regs_per_instruction: int = 64
    alu_features: FrozenSet[AluFeature] = _ALL_ALU_FEATURES
    #: Operation latencies in processor cycles, keyed by resource class.
    #: These feed the machine description and the simulator in lock-step
    #: so the static schedule and the hardware agree (EPIC's core
    #: contract).  Defaults follow Trimaran/ReaCT-ILP conventions for an
    #: uncached 2-stage FPGA design: single-cycle ALU, block-multiplier
    #: multiply, iterative divide, 2-cycle external-SRAM load.
    latencies: Tuple[Tuple[str, int], ...] = (
        ("alu", 1),
        ("mul", 3),
        ("div", 12),
        ("cmp", 1),
        ("load", 2),
        ("store", 1),
        ("branch", 1),
        ("pbr", 1),
    )
    #: Register-file controller budget (§3.2): dual-port block RAM clocked
    #: at 4x gives 8 read/write operations per processor cycle.
    regfile_ops_per_cycle: int = 8
    #: Forwarding of results computed in the previous cycle (§3.2),
    #: handled by the register file controller; reduces port pressure.
    forwarding: bool = True
    #: Model the register-file port budget at all (ablation switch A1).
    model_port_limit: bool = True
    #: Number of external 32-bit memory banks (§3.2).
    n_mem_banks: int = 4
    #: When True, data accesses steal fetch bandwidth from the 2x-clock
    #: memory controller (256 bits/cycle total), stalling the fetch stage
    #: for one cycle per load/store.  The paper's ReaCT-ILP numbers do not
    #: appear to include this effect, so it defaults to off; it is an
    #: ablation switch.
    lsu_shares_fetch_bandwidth: bool = False
    #: Custom instructions: mapping from mnemonic to a CustomOp spec
    #: (see repro.isa.custom).  Stored as a tuple for hashability.
    custom_ops: Tuple[object, ...] = ()
    #: Pipeline depth (paper §6 lists "parameterising the level of
    #: pipelining" as current/future work; we implement it).  The
    #: prototype is 2-stage; deeper front ends raise the achievable
    #: clock (see repro.fpga.timing_model) but cost one branch bubble
    #: per extra stage, since branches still resolve in the final stage.
    pipeline_stages: int = 2
    #: Target clock rate of the soft core in MHz (paper: 41.8 MHz
    #: prototype).  The FPGA timing model can re-estimate this.
    clock_mhz: float = 41.8
    #: How the core reacts to an architectural trap (illegal instruction,
    #: out-of-bounds non-speculative access, register-port overflow,
    #: parity error) — one of :data:`TRAP_POLICIES`.
    trap_policy: str = "halt"
    #: SEU protection of the block-RAM register files (GPR/predicate/BTR)
    #: — one of :data:`PROTECTION_SCHEMES`.
    regfile_protection: str = "none"
    #: SEU protection of the external data-memory banks.
    memory_protection: str = "none"

    def __post_init__(self) -> None:
        self._validate()

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        if self.n_alus < 1:
            raise ConfigError("n_alus must be >= 1")
        if self.n_gprs < 4:
            raise ConfigError("n_gprs must be >= 4 (zero reg, SP, RV, RA)")
        if self.n_preds < 2:
            raise ConfigError("n_preds must be >= 2 (p0 is hardwired true)")
        if self.n_btrs < 1:
            raise ConfigError("n_btrs must be >= 1")
        if not 1 <= self.issue_width <= MAX_ISSUE_WIDTH:
            raise ConfigError(
                f"issue_width must be in 1..{MAX_ISSUE_WIDTH} "
                "(limited by memory bandwidth, paper §3.3)"
            )
        if self.datapath_width not in (8, 16, 32, 64):
            raise ConfigError("datapath_width must be one of 8, 16, 32, 64")
        if self.regs_per_instruction < self.n_gprs:
            raise ConfigError(
                "regs_per_instruction must be >= n_gprs: every architected "
                "register must be addressable"
            )
        if self.regfile_ops_per_cycle < 2:
            raise ConfigError("regfile_ops_per_cycle must be >= 2")
        if self.n_mem_banks < 1:
            raise ConfigError("n_mem_banks must be >= 1")
        if not 2 <= self.pipeline_stages <= 4:
            raise ConfigError("pipeline_stages must be in 2..4")
        if self.trap_policy not in TRAP_POLICIES:
            raise ConfigError(
                f"trap_policy must be one of {TRAP_POLICIES}, "
                f"got {self.trap_policy!r}"
            )
        if self.regfile_protection not in PROTECTION_SCHEMES:
            raise ConfigError(
                f"regfile_protection must be one of {PROTECTION_SCHEMES}, "
                f"got {self.regfile_protection!r}"
            )
        if self.memory_protection not in PROTECTION_SCHEMES:
            raise ConfigError(
                f"memory_protection must be one of {PROTECTION_SCHEMES}, "
                f"got {self.memory_protection!r}"
            )
        latency_map = dict(self.latencies)
        for name in ("alu", "mul", "div", "cmp", "load", "store", "branch", "pbr"):
            if name not in latency_map:
                raise ConfigError(f"missing latency entry for {name!r}")
            if latency_map[name] < 1:
                raise ConfigError(f"latency for {name!r} must be >= 1")
        seen = set()
        for spec in self.custom_ops:
            mnemonic = getattr(spec, "mnemonic", None)
            if not mnemonic:
                raise ConfigError("custom op spec must define a mnemonic")
            if mnemonic in seen:
                raise ConfigError(f"duplicate custom op {mnemonic!r}")
            seen.add(mnemonic)

    # -- derived quantities --------------------------------------------

    @property
    def latency(self) -> Dict[str, int]:
        """Latency table as a dictionary (resource class -> cycles)."""
        return dict(self.latencies)

    @property
    def taken_branch_penalty(self) -> int:
        """Bubble cycles after a taken branch (front-end flush)."""
        return self.pipeline_stages - 1

    @property
    def mask(self) -> int:
        """Bit mask of the datapath width (e.g. 0xFFFFFFFF for 32 bits)."""
        return (1 << self.datapath_width) - 1

    @property
    def sign_bit(self) -> int:
        """Sign-bit value of the datapath width."""
        return 1 << (self.datapath_width - 1)

    def has_feature(self, feature: AluFeature) -> bool:
        return feature in self.alu_features

    def with_changes(self, **kwargs) -> "MachineConfig":
        """Return a modified copy (frozen-dataclass friendly)."""
        return replace(self, **kwargs)

    def with_latency(self, name: str, cycles: int) -> "MachineConfig":
        """Return a copy with one latency entry overridden."""
        table = dict(self.latencies)
        if name not in table:
            raise ConfigError(f"unknown latency class {name!r}")
        table[name] = cycles
        return replace(self, latencies=tuple(sorted(table.items())))

    def canonical(self) -> Dict[str, object]:
        """Canonical, order-stable description of the configuration.

        The dictionary is pure JSON data (no enums, no sets) with every
        unordered collection sorted, so two semantically equal configs
        produce the same rendering regardless of construction order,
        process, or platform.  Custom operations are represented by
        their architectural contract (mnemonic, functional unit,
        latency, slice cost); their Python semantics callable cannot be
        hashed, so two custom ops that agree on the contract are
        considered the same operation.  Cosmetic fields (the custom-op
        ``description``) are excluded: the digest must change iff a
        semantically relevant field changes.
        """
        return {
            "version": CONFIG_DIGEST_VERSION,
            "n_alus": self.n_alus,
            "n_gprs": self.n_gprs,
            "n_preds": self.n_preds,
            "n_btrs": self.n_btrs,
            "issue_width": self.issue_width,
            "datapath_width": self.datapath_width,
            "regs_per_instruction": self.regs_per_instruction,
            "alu_features": sorted(f.value for f in self.alu_features),
            "latencies": [[name, cycles]
                          for name, cycles in sorted(self.latencies)],
            "regfile_ops_per_cycle": self.regfile_ops_per_cycle,
            "forwarding": self.forwarding,
            "model_port_limit": self.model_port_limit,
            "n_mem_banks": self.n_mem_banks,
            "lsu_shares_fetch_bandwidth": self.lsu_shares_fetch_bandwidth,
            "custom_ops": sorted(
                (
                    {
                        "mnemonic": spec.mnemonic,
                        "fu_class": getattr(spec, "fu_class", "alu"),
                        "latency": getattr(spec, "latency", 1),
                        "slices": getattr(spec, "slices", 0),
                    }
                    for spec in self.custom_ops
                ),
                key=lambda entry: entry["mnemonic"],
            ),
            "pipeline_stages": self.pipeline_stages,
            "clock_mhz": self.clock_mhz,
            "trap_policy": self.trap_policy,
            "regfile_protection": self.regfile_protection,
            "memory_protection": self.memory_protection,
        }

    def digest(self) -> str:
        """Stable SHA-256 content digest of :meth:`canonical`.

        Used as the configuration component of result-cache keys
        (:mod:`repro.serve`): equal digests guarantee the simulator,
        compiler and FPGA model see the same machine.
        """
        rendered = json.dumps(self.canonical(), sort_keys=True,
                              separators=(",", ":"))
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary, used by tools and reports."""
        features = ",".join(sorted(f.value for f in self.alu_features))
        return (
            f"EPIC[{self.n_alus} ALU, {self.n_gprs} GPR, {self.n_preds} PR, "
            f"{self.n_btrs} BTR, issue={self.issue_width}, "
            f"width={self.datapath_width}, alu={{{features}}}]"
        )
