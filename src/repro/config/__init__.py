"""Processor configuration: the paper's compile-time parameters (§3.3).

The :class:`MachineConfig` captures every customisation knob the paper
lists — number of ALUs, general-purpose/predicate/branch-target registers,
instructions per issue, datapath width and the ALU functionality set —
plus the custom-instruction registry hook.  All downstream tools (the
instruction format, the machine description, the compiler backend, the
assembler, the simulator and the FPGA model) are derived from one config
object, mirroring the paper's single "configuration header file".
"""

from repro.config.machine import (
    AluFeature,
    CONFIG_DIGEST_VERSION,
    MachineConfig,
    PROTECTION_SCHEMES,
    TRAP_POLICIES,
)
from repro.config.presets import (
    DEFAULT_CONFIG,
    epic_config,
    epic_with_alus,
    sweep_alus,
)

__all__ = [
    "AluFeature",
    "CONFIG_DIGEST_VERSION",
    "MachineConfig",
    "PROTECTION_SCHEMES",
    "TRAP_POLICIES",
    "DEFAULT_CONFIG",
    "epic_config",
    "epic_with_alus",
    "sweep_alus",
]
