"""``repro-serve``: run batches of evaluation jobs from the shell.

Subcommands::

    repro-serve batch  --kind sweep --quick --alus 1 2 3 4 --out b.json
    repro-serve run    b.json --jobs 4 --cache .repro-cache --out r.json
    repro-serve warm   b.json --cache .repro-cache --jobs 4
    repro-serve verify b.json --cache .repro-cache
    repro-serve warmgate b.json --jobs 4 --speedup 2  # warm-pool CI gate
    repro-serve daemon --spool .repro-spool          # long-running service
    repro-serve chaos  --seed 7 --out chaos.json     # differential gate

Parallel runs (``--jobs N``, N > 1) execute on the **warm persistent
worker pool** (:class:`~repro.serve.supervisor.SupervisedPool` with
``warm=True``): long-lived workers whose compile caches and memoised
checkers survive across jobs, with affinity routing.  Pass
``--fresh-workers`` to restore the one-process-per-job strategy.
``warmgate`` runs one batch serial, fresh and warm, requires all three
outcome tables byte-identical and (optionally) a minimum warm-vs-fresh
speedup — the CI gate for the warm fabric.

``batch`` writes a batch file describing one job per (benchmark,
machine) cell — sweep evaluations, fault campaigns or dual-engine
bench cells.  ``run`` executes a batch (optionally in parallel and/or
against a result cache) and writes a report with per-job outcomes,
throughput, and cache statistics.  ``warm`` is ``run`` whose sole
purpose is filling the cache.  ``verify`` recomputes every job fresh
and diffs the payloads against the cache — the cache's own lockstep
checker.

A repeated ``run`` against a warm cache reports a 100% hit rate; the
report's deterministic content is byte-identical to the cold run's.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import List, Optional

from repro.config import epic_with_alus
from repro.errors import ReproError
from repro.harness.tables import BENCHMARK_ORDER
from repro.serve.cache import ResultCache
from repro.serve.executors import (
    JOB_STATUSES,
    SerialExecutor,
    run_jobs,
)
from repro.serve.supervisor import SupervisedPool
from repro.serve.jobspec import (
    KIND_BENCH,
    KIND_CAMPAIGN,
    KIND_SWEEP,
    JobSpec,
    bench_job,
    campaign_job,
    dump_batch,
    load_batch,
    shard_campaign,
    sweep_job,
)
from repro.workloads import WORKLOADS


def _specs_for(names: List[str], quick: bool):
    if quick:
        from repro.harness.cli import quick_specs

        return quick_specs(names)
    return [WORKLOADS[name]() for name in names]


def _build_executor(jobs: int, timeout: Optional[float], retries: int,
                    fresh: bool = False,
                    recycle_after: Optional[int] = None):
    """Parallel runs default to the warm persistent pool; ``fresh``
    restores the one-process-per-job strategy."""
    if jobs > 1:
        return SupervisedPool(jobs=jobs, timeout=timeout,
                              retries=retries, warm=not fresh,
                              recycle_after=recycle_after)
    return SerialExecutor()


def _close_executor(executor) -> None:
    close = getattr(executor, "close", None)
    if callable(close):
        close()


def _batch_command(arguments) -> int:
    specs = _specs_for(arguments.bench, arguments.quick)
    jobs: List[JobSpec] = []
    for spec in specs:
        for n_alus in arguments.alus:
            config = epic_with_alus(n_alus)
            if arguments.kind == KIND_SWEEP:
                jobs.append(sweep_job(spec, config))
            elif arguments.kind == KIND_BENCH:
                jobs.append(bench_job(spec, config))
            else:
                whole = campaign_job(spec, config, arguments.n,
                                     arguments.seed)
                if arguments.shards > 1:
                    jobs.extend(shard_campaign(whole, arguments.shards))
                else:
                    jobs.append(whole)
    dump_batch(jobs, arguments.out)
    print(f"wrote {len(jobs)} {arguments.kind} job(s) to {arguments.out}")
    return 0


def _report(outcomes, wall_seconds: float, cache) -> dict:
    counts = {status: 0 for status in JOB_STATUSES}
    cached = 0
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
        if outcome.cached:
            cached += 1
    report = {
        "generated_by": "repro-serve",
        "jobs": [outcome.summary() for outcome in outcomes],
        "summary": {
            "total": len(outcomes),
            **counts,
            "cached": cached,
            "wall_seconds": round(wall_seconds, 6),
            "jobs_per_second": (
                round(len(outcomes) / wall_seconds, 3)
                if wall_seconds > 0 else 0.0
            ),
        },
    }
    if cache is not None:
        report["cache"] = cache.stats.as_dict()
    return report


def _run_command(arguments, warm_only: bool = False) -> int:
    specs = load_batch(arguments.batch)
    cache = ResultCache(arguments.cache) if arguments.cache else None
    executor = _build_executor(arguments.jobs, arguments.timeout,
                               arguments.retries,
                               fresh=arguments.fresh_workers)

    done = [0]

    def on_result(outcome) -> None:
        done[0] += 1
        if arguments.verbose:
            origin = "cache" if outcome.cached else \
                f"{outcome.seconds:.3f}s"
            print(f"  [{done[0]}/{len(specs)}] {outcome.spec.job_id}: "
                  f"{outcome.status} ({origin})", file=sys.stderr)

    started = perf_counter()
    try:
        outcomes = run_jobs(specs, executor=executor, cache=cache,
                            on_result=on_result)
    finally:
        _close_executor(executor)
    wall = perf_counter() - started
    report = _report(outcomes, wall, cache)
    telemetry = getattr(executor, "telemetry", None)
    if callable(telemetry):
        report["warm_pool"] = telemetry()
    if getattr(arguments, "telemetry_out", None):
        with open(arguments.telemetry_out, "w",
                  encoding="utf-8") as handle:
            json.dump(report.get("warm_pool", {}), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")

    if getattr(arguments, "out", None):
        with open(arguments.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    summary = report["summary"]
    verb = "warmed" if warm_only else "ran"
    line = (f"{verb} {summary['total']} job(s) in "
            f"{summary['wall_seconds']:.3f}s "
            f"({summary['jobs_per_second']:.2f} jobs/s; "
            f"{summary['ok']} ok, {summary['cached']} from cache")
    failures = (summary["error"] + summary["timeout"]
                + summary["crashed"] + summary["poisoned"])
    if failures:
        line += (f", {summary['error']} error, {summary['timeout']} "
                 f"timeout, {summary['crashed']} crashed, "
                 f"{summary['poisoned']} poisoned")
    line += ")"
    print(line)
    if cache is not None:
        stats = cache.stats
        print(f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.puts} write(s), {stats.invalidations} "
              f"invalidation(s) — hit rate "
              f"{stats.hit_rate * 100:.1f}%")
    if arguments.json:
        print(json.dumps(report, indent=2))
    return 1 if failures else 0


def _verify_command(arguments) -> int:
    specs = load_batch(arguments.batch)
    cache = ResultCache(arguments.cache)
    executor = _build_executor(arguments.jobs, arguments.timeout,
                               arguments.retries,
                               fresh=arguments.fresh_workers)
    # Recompute everything fresh (no cache on the run), then diff
    # against what the cache claims.
    try:
        outcomes = run_jobs(specs, executor=executor, cache=None)
    finally:
        _close_executor(executor)
    missing: List[str] = []
    stale: List[str] = []
    verified = 0
    for outcome in outcomes:
        if not outcome.ok:
            print(f"repro-serve: cannot verify {outcome.spec.job_id}: "
                  f"job {outcome.status}: {outcome.error}",
                  file=sys.stderr)
            return 1
        cached = cache.get(outcome.spec)
        if cached is None:
            missing.append(outcome.spec.job_id)
        elif cached != outcome.payload:
            stale.append(outcome.spec.job_id)
        else:
            verified += 1
    print(f"verified {verified}/{len(outcomes)} cached result(s); "
          f"{len(missing)} missing, {len(stale)} stale")
    for job_id in missing:
        print(f"  missing: {job_id}", file=sys.stderr)
    for job_id in stale:
        print(f"  STALE: {job_id} — cached payload differs from a "
              "fresh run", file=sys.stderr)
    return 1 if stale else 0


def _warmgate_command(arguments) -> int:
    """CI gate: prove the warm pool is faster than the fresh pool on
    the same batch *and* byte-identical to the serial executor."""
    from repro.serve.chaos import outcome_table

    specs = load_batch(arguments.batch)

    # Pool legs run BEFORE the serial leg: on fork-start platforms a
    # worker inherits every in-process memo (checker, compile caches)
    # its parent has populated, so executing any job in this process
    # first would hand the fresh pool pre-warmed children and erase
    # the very cost the gate measures.
    fresh_pool = SupervisedPool(jobs=arguments.jobs,
                                timeout=arguments.timeout,
                                retries=arguments.retries)
    started = perf_counter()
    fresh_outcomes = fresh_pool.run(specs)
    fresh_wall = perf_counter() - started

    with SupervisedPool(jobs=arguments.jobs,
                        timeout=arguments.timeout,
                        retries=arguments.retries, warm=True,
                        recycle_after=arguments.recycle_after or None
                        ) as warm_pool:
        started = perf_counter()
        warm_outcomes = warm_pool.run(specs)
        warm_wall = perf_counter() - started
        telemetry = warm_pool.telemetry()

    started = perf_counter()
    serial_outcomes = SerialExecutor().run(specs)
    serial_wall = perf_counter() - started

    tables = {
        "serial": outcome_table(serial_outcomes),
        "fresh": outcome_table(fresh_outcomes),
        "warm": outcome_table(warm_outcomes),
    }
    identical = tables["serial"] == tables["fresh"] == tables["warm"]
    speedup = fresh_wall / warm_wall if warm_wall > 0 else float("inf")
    report = {
        "generated_by": "repro-serve warmgate",
        "jobs": len(specs),
        "workers": arguments.jobs,
        "identical": identical,
        "serial_wall_seconds": round(serial_wall, 6),
        "fresh_wall_seconds": round(fresh_wall, 6),
        "warm_wall_seconds": round(warm_wall, 6),
        "warm_vs_fresh_speedup": round(speedup, 3),
        "required_speedup": arguments.speedup,
        "warm_pool": telemetry,
    }
    if arguments.out:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(f"warmgate over {len(specs)} job(s) x {arguments.jobs} "
          f"worker(s): serial {serial_wall:.3f}s, fresh "
          f"{fresh_wall:.3f}s, warm {warm_wall:.3f}s "
          f"({speedup:.2f}x warm-vs-fresh; reuse rate "
          f"{telemetry['worker_reuse_rate'] * 100:.0f}%, affinity hit "
          f"rate {telemetry['affinity_hit_rate'] * 100:.0f}%)")
    if not identical:
        print("repro-serve warmgate: OUTCOME TABLES DIVERGED "
              "(serial vs fresh vs warm)", file=sys.stderr)
        return 1
    print("outcome tables byte-identical: serial == fresh == warm")
    if arguments.speedup and speedup < arguments.speedup:
        print(f"repro-serve warmgate: warm pool only {speedup:.2f}x "
              f"over fresh (required {arguments.speedup:g}x)",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Dispatch the pass-through subcommands before argparse sees the
    # tail: REMAINDER cannot capture option-like tokens ("--seed")
    # reliably, and these tools own their full argument surface.
    if argv[:1] == ["daemon"]:
        from repro.serve.daemon import main as daemon_main

        return daemon_main(argv[1:])
    if argv[:1] == ["chaos"]:
        from repro.serve.chaos import main as chaos_main

        return chaos_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run batches of evaluation jobs through the "
                    "parallel executor and result cache.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    batch = commands.add_parser(
        "batch", help="write a batch file of jobs")
    batch.add_argument("--kind", default=KIND_SWEEP,
                       choices=(KIND_SWEEP, KIND_CAMPAIGN, KIND_BENCH),
                       help="job kind (default sweep)")
    batch.add_argument("--bench", nargs="*", default=list(BENCHMARK_ORDER),
                       choices=list(BENCHMARK_ORDER),
                       help="benchmarks to cover")
    batch.add_argument("--alus", nargs="*", type=int, default=[1, 2, 3, 4],
                       help="ALU counts (machine presets)")
    batch.add_argument("--quick", action="store_true",
                       help="use reduced benchmark input sizes")
    batch.add_argument("--n", type=int, default=50,
                       help="injections per campaign job")
    batch.add_argument("--seed", type=int, default=42,
                       help="campaign seed")
    batch.add_argument("--shards", type=int, default=1,
                       help="split each campaign into this many "
                            "fault-slice jobs")
    batch.add_argument("--out", required=True, help="batch file to write")

    def add_run_arguments(sub, needs_cache: bool) -> None:
        sub.add_argument("batch", help="batch file of jobs to run")
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (default: serial)")
        sub.add_argument("--cache", required=needs_cache,
                         help="result-cache directory")
        sub.add_argument("--timeout", type=float, default=None,
                         help="per-job timeout in seconds")
        sub.add_argument("--retries", type=int, default=1,
                         help="retries after a worker crash (default 1)")
        sub.add_argument("--fresh-workers", action="store_true",
                         help="fork a fresh worker per job instead of "
                              "the warm persistent pool")
        sub.add_argument("--verbose", action="store_true",
                         help="print one line per finished job")

    run = commands.add_parser(
        "run", help="execute a batch, optionally cached/parallel")
    add_run_arguments(run, needs_cache=False)
    run.add_argument("--out", help="write the JSON report here")
    run.add_argument("--json", action="store_true",
                     help="also print the JSON report to stdout")
    run.add_argument("--telemetry-out",
                     help="write warm-pool telemetry JSON here")

    warm = commands.add_parser(
        "warm", help="execute a batch purely to fill the cache")
    add_run_arguments(warm, needs_cache=True)

    verify = commands.add_parser(
        "verify", help="recompute a batch and diff against the cache")
    add_run_arguments(verify, needs_cache=True)

    warmgate = commands.add_parser(
        "warmgate",
        help="gate: warm pool >= Nx over fresh pool, byte-identical "
             "to serial")
    warmgate.add_argument("batch", help="batch file of jobs to run")
    warmgate.add_argument("--jobs", type=int, default=2, metavar="N",
                          help="worker processes (default 2)")
    warmgate.add_argument("--timeout", type=float, default=None,
                          help="per-job timeout in seconds")
    warmgate.add_argument("--retries", type=int, default=1,
                          help="retries after a worker crash")
    warmgate.add_argument("--recycle-after", type=int, default=0,
                          help="warm-worker recycle bound (0: none)")
    warmgate.add_argument("--speedup", type=float, default=0.0,
                          help="minimum warm-vs-fresh speedup to pass "
                               "(0 disables the perf gate)")
    warmgate.add_argument("--out",
                          help="write the JSON gate report here")

    # Registered for `repro-serve --help` only; dispatched above.
    commands.add_parser(
        "daemon", add_help=False,
        help="run the long-running job service "
             "(see python -m repro.serve.daemon --help)")
    commands.add_parser(
        "chaos", add_help=False,
        help="run the differential chaos campaign "
             "(see python -m repro.serve.chaos --help)")

    arguments = parser.parse_args(argv)
    if getattr(arguments, "jobs", 1) < 1:
        print("repro-serve: --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        if arguments.command == "batch":
            return _batch_command(arguments)
        if arguments.command == "run":
            return _run_command(arguments)
        if arguments.command == "warm":
            arguments.json = False
            arguments.out = None
            return _run_command(arguments, warm_only=True)
        if arguments.command == "warmgate":
            return _warmgate_command(arguments)
        return _verify_command(arguments)
    except ReproError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
