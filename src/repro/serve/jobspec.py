"""Canonical job descriptions: what exactly is one evaluation?

A :class:`JobSpec` pins down everything a worker needs to reproduce an
evaluation bit-for-bit in another process: the workload (by registry
name plus the constructor arguments that size it), the machine
configuration (carried whole, digested canonically), the execution
engine, the cycle budget, and — for fault campaigns — the seed, the
fault spaces, and the slice of the campaign this job covers.

Two properties matter:

* **canonical** — :meth:`JobSpec.canonical` renders the spec as pure,
  order-stable JSON data, and :meth:`JobSpec.digest` hashes it (with a
  schema version), so semantically equal jobs share a digest across
  processes and platforms.  This digest is the result-cache key.
* **self-contained** — :meth:`JobSpec.to_payload` /
  :meth:`JobSpec.from_payload` round-trip through JSON, so batches of
  jobs live in plain files and travel to worker processes without
  pickling anything richer than a dict.

Configurations carrying custom instructions are rejected: a custom
op's semantics is an arbitrary Python callable that cannot be hashed
or serialised, so two such configs could collide in the cache while
meaning different machines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.config import MachineConfig
from repro.config.machine import AluFeature
from repro.errors import ServeError
from repro.workloads import WORKLOADS, WorkloadSpec, XorShift32

#: Version of the JobSpec canonical schema; hashed into every digest,
#: so bumping it invalidates result caches built under the old schema.
#: v2 added ``cycle_limit_ok`` to sweep jobs (budget-truncated runs
#: surface as structured payloads instead of errors).
SPEC_VERSION = 2

#: Version of the batch-file envelope written by :func:`dump_batch`.
BATCH_VERSION = 1

KIND_SWEEP = "sweep"
KIND_CAMPAIGN = "campaign"
KIND_BENCH = "bench"
#: Probe jobs exercise the executor itself (self-tests and the crash /
#: timeout acceptance checks); they never touch the simulator.
KIND_PROBE = "probe"

JOB_KINDS = (KIND_SWEEP, KIND_CAMPAIGN, KIND_BENCH, KIND_PROBE)

#: Execution engines a job may request (see ``EpicProcessor.run``):
#: ``auto`` lets the simulator pick the fast path when eligible,
#: ``fast`` / ``reference`` / ``trace`` force one engine, and the bench
#: combinations ``both`` (instrumented + fast) and ``all``
#: (instrumented + fast + trace) run several engines and cross-check
#: them.  Campaign jobs additionally accept ``vector``: the batched
#: lane engine (:mod:`repro.core.vector`), byte-identical to the
#: scalar checker.
ENGINES = ("auto", "fast", "reference", "trace", "both", "all", "vector")

#: Probe behaviours understood by the worker.  ``stubborn`` ignores
#: SIGTERM and hangs — the acceptance probe for the executors'
#: SIGTERM -> SIGKILL reap escalation.
PROBE_BEHAVIOURS = ("ok", "fail", "crash", "hang", "sleep", "stubborn")

#: Default cycle budget, matching the harness runner.
DEFAULT_MAX_CYCLES = 200_000_000


@dataclass(frozen=True, eq=False)
class JobSpec:
    """One pure, independent evaluation, canonically described.

    Equality and hashing follow the *canonical* form, not raw field
    identity: a spec that round-trips through JSON compares equal to
    the original even where a field's cosmetic ordering (say, the
    config's latency tuple) was normalised along the way.
    """

    kind: str
    workload: str = ""
    #: Positional constructor args of the workload instance (empty
    #: means the constructor's defaults — the full paper-size input).
    workload_args: Tuple[int, ...] = ()
    config: Optional[MachineConfig] = None
    engine: str = "auto"
    validate: bool = True
    max_cycles: int = DEFAULT_MAX_CYCLES
    #: Sweep jobs only: treat blowing the ``max_cycles`` budget as a
    #: *result* (outcome ``cycle-limit-exceeded``, cycles clamped to
    #: the budget) instead of a job error.  Lets a design-space search
    #: prune hopeless candidates cheaply without tripping the
    #: executor's failure accounting.
    cycle_limit_ok: bool = False
    # -- campaign jobs only -------------------------------------------
    n: int = 0
    seed: int = 0
    spaces: Tuple[str, ...] = ()
    watchdog_factor: float = 4.0
    #: Slice of the campaign's fault list this job covers.  The full
    #: fault list is always regenerated from (n, seed) and then sliced,
    #: so any sharding of one campaign yields byte-identical faults.
    fault_offset: int = 0
    #: Number of faults in the slice; -1 means "through the end".
    fault_count: int = -1
    # -- probe jobs only ----------------------------------------------
    behavior: str = ""
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServeError(f"unknown job kind {self.kind!r}")
        if self.engine not in ENGINES:
            raise ServeError(
                f"unknown engine {self.engine!r}: expected one of "
                f"{', '.join(ENGINES)}"
            )
        if self.engine == "vector" and self.kind != KIND_CAMPAIGN:
            raise ServeError(
                "the vector engine batches fault lanes; only campaign "
                "jobs can request it"
            )
        if self.kind == KIND_PROBE:
            if self.behavior not in PROBE_BEHAVIOURS:
                raise ServeError(
                    f"probe behaviour must be one of {PROBE_BEHAVIOURS}, "
                    f"got {self.behavior!r}"
                )
            return
        if self.workload not in WORKLOADS:
            raise ServeError(
                f"unknown workload {self.workload!r} "
                f"(known: {', '.join(sorted(WORKLOADS))})"
            )
        if self.config is None:
            raise ServeError(f"{self.kind} jobs require a machine config")
        if self.config.custom_ops:
            raise ServeError(
                "configs with custom instructions cannot be served: the "
                "op semantics callable is not serialisable, so the job "
                "digest could not distinguish two different machines"
            )
        if self.cycle_limit_ok and self.kind != KIND_SWEEP:
            raise ServeError(
                "cycle_limit_ok only applies to sweep jobs: campaigns "
                "already classify budget blow-ups as the hung outcome"
            )
        if self.kind == KIND_CAMPAIGN:
            if self.n < 1:
                raise ServeError("campaign jobs need n >= 1 injections")
            if not self.seed:
                # Mirrors generate_faults(): XorShift32 cannot hold
                # state 0, so a zero seed would fail in the worker.
                # Reject it at build time instead.
                raise ServeError("campaign jobs need a non-zero seed")
            if not self.spaces:
                raise ServeError("campaign jobs need at least one fault "
                                 "space (use campaign_job())")
            if self.fault_offset < 0 or self.fault_offset > self.n:
                raise ServeError("fault_offset out of range")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JobSpec):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.digest())

    # -- canonical form and digest ------------------------------------

    def canonical(self) -> Dict[str, object]:
        """Order-stable pure-JSON description (the digest pre-image)."""
        payload: Dict[str, object] = {
            "version": SPEC_VERSION,
            "kind": self.kind,
            "engine": self.engine,
        }
        if self.kind == KIND_PROBE:
            payload["behavior"] = self.behavior
            payload["seconds"] = self.seconds
            payload["seed"] = self.seed
            return payload
        payload["workload"] = self.workload
        payload["workload_args"] = list(self.workload_args)
        payload["config"] = self.config.canonical()
        payload["validate"] = self.validate
        payload["max_cycles"] = self.max_cycles
        if self.kind == KIND_SWEEP:
            payload["cycle_limit_ok"] = self.cycle_limit_ok
        if self.kind == KIND_CAMPAIGN:
            payload["n"] = self.n
            payload["seed"] = self.seed
            payload["spaces"] = list(self.spaces)
            payload["watchdog_factor"] = self.watchdog_factor
            payload["fault_offset"] = self.fault_offset
            payload["fault_count"] = self.fault_count
        return payload

    def digest(self) -> str:
        """SHA-256 content digest of :meth:`canonical` (cache key)."""
        rendered = json.dumps(self.canonical(), sort_keys=True,
                              separators=(",", ":"))
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    @property
    def job_id(self) -> str:
        """Short human-readable identity: kind, subject, digest prefix."""
        subject = self.workload if self.kind != KIND_PROBE else self.behavior
        return f"{self.kind}:{subject}:{self.digest()[:10]}"

    def affinity_key(self) -> str:
        """Worker-affinity routing key: the (workload instance, machine)
        cell this job's expensive per-process state is keyed by.

        Every in-process cache a warm worker accumulates — the memoised
        lockstep checker, the fastpath/trace compile caches, the golden
        checkpoint stream — is keyed by the workload instance and the
        machine configuration, never by the job's seed or fault slice.
        Jobs sharing this key therefore reuse each other's warm state,
        which is exactly what the warm pool routes on.  Probe jobs
        carry no warm state and share one key.
        """
        if self.kind == KIND_PROBE:
            return "probe"
        args = ",".join(str(arg) for arg in self.workload_args)
        return f"{self.workload}:{args}:{self.config.digest()[:16]}"

    def describe(self) -> str:
        if self.kind == KIND_PROBE:
            return f"probe({self.behavior})"
        parts = [self.kind, self.workload]
        if self.workload_args:
            parts.append("x".join(str(a) for a in self.workload_args))
        parts.append(f"EPIC-{self.config.n_alus}ALU")
        if self.kind == KIND_CAMPAIGN:
            count = self.fault_count if self.fault_count >= 0 \
                else self.n - self.fault_offset
            parts.append(f"n={self.n} seed={self.seed} "
                         f"[{self.fault_offset}:+{count}]")
        return " ".join(parts)

    # -- JSON round-trip ----------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable form, reversible via :meth:`from_payload`."""
        return self.canonical()

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "JobSpec":
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ServeError("malformed job payload: expected a dict "
                             "with a 'kind' key")
        version = payload.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ServeError(
                f"job payload schema v{version} is not supported "
                f"(this build speaks v{SPEC_VERSION})"
            )
        kind = payload["kind"]
        common = dict(
            kind=kind,
            engine=payload.get("engine", "auto"),
        )
        try:
            if kind == KIND_PROBE:
                return cls(behavior=payload.get("behavior", ""),
                           seconds=float(payload.get("seconds", 0.0)),
                           seed=int(payload.get("seed", 0)),
                           **common)
            spec = cls(
                workload=payload.get("workload", ""),
                workload_args=tuple(payload.get("workload_args", ())),
                config=config_from_canonical(payload.get("config")),
                validate=bool(payload.get("validate", True)),
                max_cycles=int(payload.get("max_cycles",
                                           DEFAULT_MAX_CYCLES)),
                cycle_limit_ok=bool(payload.get("cycle_limit_ok", False)),
                n=int(payload.get("n", 0)),
                seed=int(payload.get("seed", 0)),
                spaces=tuple(payload.get("spaces", ())),
                watchdog_factor=float(payload.get("watchdog_factor", 4.0)),
                fault_offset=int(payload.get("fault_offset", 0)),
                fault_count=int(payload.get("fault_count", -1)),
                **common,
            )
        except (TypeError, ValueError) as error:
            raise ServeError(f"malformed job payload: {error}") from error
        return spec


def config_from_canonical(payload: object) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from its canonical rendering."""
    if not isinstance(payload, dict):
        raise ServeError("job payload carries no machine config")
    if payload.get("custom_ops"):
        raise ServeError("cannot rebuild a config with custom "
                         "instructions from a payload")
    try:
        return MachineConfig(
            n_alus=payload["n_alus"],
            n_gprs=payload["n_gprs"],
            n_preds=payload["n_preds"],
            n_btrs=payload["n_btrs"],
            issue_width=payload["issue_width"],
            datapath_width=payload["datapath_width"],
            regs_per_instruction=payload["regs_per_instruction"],
            alu_features=frozenset(
                AluFeature(value) for value in payload["alu_features"]),
            latencies=tuple(
                (name, cycles) for name, cycles in payload["latencies"]),
            regfile_ops_per_cycle=payload["regfile_ops_per_cycle"],
            forwarding=payload["forwarding"],
            model_port_limit=payload["model_port_limit"],
            n_mem_banks=payload["n_mem_banks"],
            lsu_shares_fetch_bandwidth=payload[
                "lsu_shares_fetch_bandwidth"],
            pipeline_stages=payload["pipeline_stages"],
            clock_mhz=payload["clock_mhz"],
            trap_policy=payload["trap_policy"],
            regfile_protection=payload["regfile_protection"],
            memory_protection=payload["memory_protection"],
        )
    except KeyError as error:
        raise ServeError(
            f"config payload is missing field {error.args[0]!r}"
        ) from error


# -- job builders ------------------------------------------------------

def sweep_job(spec: WorkloadSpec, config: MachineConfig,
              validate: bool = True,
              max_cycles: int = DEFAULT_MAX_CYCLES,
              engine: str = "auto",
              cycle_limit_ok: bool = False) -> JobSpec:
    """A design-point evaluation job (cycles + area + clock).

    ``cycle_limit_ok=True`` turns a blown cycle budget into a payload
    with outcome ``cycle-limit-exceeded`` instead of a failed job —
    the knob the autotuner uses to prune slow candidates.
    """
    return JobSpec(kind=KIND_SWEEP, workload=spec.name,
                   workload_args=tuple(spec.instance_args), config=config,
                   validate=validate, max_cycles=max_cycles, engine=engine,
                   cycle_limit_ok=cycle_limit_ok)


def campaign_job(spec: WorkloadSpec, config: MachineConfig,
                 n: int, seed: int,
                 spaces: Sequence[str] = (),
                 watchdog_factor: float = 4.0,
                 fault_offset: int = 0,
                 fault_count: int = -1,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 engine: str = "auto") -> JobSpec:
    """A fault-injection campaign job (or one shard of a campaign).

    ``engine`` is ``auto`` (scalar checker) or ``vector`` (batched
    lane engine) — a perf knob; the outcome payload is byte-identical.
    """
    if not spaces:
        from repro.harness.faultcampaign import DEFAULT_SPACES
        spaces = DEFAULT_SPACES
    return JobSpec(kind=KIND_CAMPAIGN, workload=spec.name,
                   workload_args=tuple(spec.instance_args), config=config,
                   max_cycles=max_cycles, n=n, seed=seed,
                   spaces=tuple(spaces), watchdog_factor=watchdog_factor,
                   fault_offset=fault_offset, fault_count=fault_count,
                   engine=engine)


def bench_job(spec: WorkloadSpec, config: MachineConfig,
              max_cycles: int = DEFAULT_MAX_CYCLES,
              engine: str = "all") -> JobSpec:
    """A multi-engine bench cell job (exactness re-checked in-worker).

    ``engine`` selects the engines the cell times: ``all`` (default,
    instrumented + fast + trace), the legacy ``both`` (instrumented +
    fast), or a single engine name.
    """
    return JobSpec(kind=KIND_BENCH, workload=spec.name,
                   workload_args=tuple(spec.instance_args), config=config,
                   max_cycles=max_cycles, engine=engine)


def shard_campaign(job: JobSpec, shards: int) -> List[JobSpec]:
    """Split one campaign job into ``shards`` contiguous fault slices.

    Slicing happens on the job's *index space* (the full fault list is
    regenerated from ``(n, seed)`` in every worker), so the union of
    the shards is byte-identical to the unsharded campaign no matter
    how many shards there are or in which order they finish.
    """
    if job.kind != KIND_CAMPAIGN:
        raise ServeError("only campaign jobs can be sharded")
    if job.fault_offset != 0 or job.fault_count != -1:
        raise ServeError("cannot re-shard an already-sliced campaign job")
    shards = max(1, min(int(shards), job.n))
    base, extra = divmod(job.n, shards)
    jobs: List[JobSpec] = []
    offset = 0
    for index in range(shards):
        count = base + (1 if index < extra else 0)
        jobs.append(JobSpec(
            kind=KIND_CAMPAIGN, workload=job.workload,
            workload_args=job.workload_args, config=job.config,
            max_cycles=job.max_cycles, n=job.n, seed=job.seed,
            spaces=job.spaces, watchdog_factor=job.watchdog_factor,
            fault_offset=offset, fault_count=count,
            engine=job.engine,
        ))
        offset += count
    return jobs


def derive_seeds(master_seed: int, count: int) -> List[int]:
    """``count`` per-job seeds from one master seed, order-stable.

    Drawn from the repo's :class:`~repro.workloads.XorShift32` at
    batch-construction time — never at scheduling time — so the seed a
    job receives depends only on its position in the batch.

    A zero (or otherwise falsy) master seed is rejected, exactly as
    :func:`~repro.harness.faultcampaign.generate_faults` rejects a
    zero campaign seed: XorShift32 cannot hold state 0, and silently
    substituting another seed would make two nominally different
    batches identical.  The derived seeds themselves are always
    non-zero (a non-zero xorshift state never reaches 0), so every
    derived seed is a valid campaign seed.
    """
    if not master_seed:
        raise ServeError("master seed must be non-zero (XorShift32 "
                         "cannot hold state 0)")
    rng = XorShift32(master_seed)
    return [rng.next() for _ in range(count)]


# -- batch files -------------------------------------------------------

def dump_batch(specs: Sequence[JobSpec],
               destination: Union[str, IO[str]]) -> None:
    """Write a batch file (JSON envelope) of job specs."""
    payload = {
        "version": BATCH_VERSION,
        "jobs": [spec.to_payload() for spec in specs],
    }
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        json.dump(payload, destination, indent=2, sort_keys=True)
        destination.write("\n")


def load_batch(source: Union[str, IO[str]]) -> List[JobSpec]:
    """Read a batch file back into job specs (input order preserved)."""
    try:
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        else:
            payload = json.load(source)
    except (OSError, json.JSONDecodeError) as error:
        raise ServeError(f"cannot read batch file: {error}") from error
    if not isinstance(payload, dict) or "jobs" not in payload:
        raise ServeError("malformed batch file: expected a JSON object "
                         "with a 'jobs' list")
    if payload.get("version", BATCH_VERSION) != BATCH_VERSION:
        raise ServeError(
            f"batch file version {payload.get('version')} is not "
            f"supported (this build speaks v{BATCH_VERSION})"
        )
    return [JobSpec.from_payload(entry) for entry in payload["jobs"]]
