"""Pluggable job executors and the cache-aware orchestration loop.

Two engines share one interface (``run(specs, on_result=None) ->
List[JobOutcome]``):

* :class:`SerialExecutor` — runs jobs in-process, in order.  The
  reference engine: every other execution strategy must reproduce its
  results byte-for-byte.
* :class:`PoolExecutor` — fans jobs out over worker *processes* (one
  fresh process per job, at most ``jobs`` alive at once), with a
  per-job timeout, bounded retries on worker crash, and structured
  outcomes for every failure mode.  No failure hangs the executor.

**Deterministic ordering is the contract**: the returned list is always
keyed by input position, never by completion order.  The optional
``on_result`` callback fires as outcomes arrive (completion order under
the pool) and is for progress display only — nothing built from the
returned list can observe scheduling.

:func:`run_jobs` layers the content-addressed
:class:`~repro.serve.cache.ResultCache` on top: hits short-circuit
execution, fresh ``ok`` results are written back.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError, ServeError
from repro.serve.jobspec import KIND_PROBE, JobSpec
from repro.serve.worker import execute_payload, execute_spec

#: Structured job statuses.  ``ok`` is the only one carrying a payload.
STATUS_OK = "ok"
STATUS_ERROR = "error"          # the job raised a (repro) error
STATUS_TIMEOUT = "timeout"      # reaped by the per-job timeout/watchdog
STATUS_CRASHED = "crashed"      # worker died without reporting
STATUS_POISONED = "poisoned"    # quarantined after a crash loop

JOB_STATUSES = (STATUS_OK, STATUS_ERROR, STATUS_TIMEOUT, STATUS_CRASHED,
                STATUS_POISONED)

#: Seconds a signalled worker gets to exit before the reap escalates.
DEFAULT_TERM_GRACE = 2.0

OnResult = Callable[["JobOutcome"], None]


def reap_process(process, grace: float = DEFAULT_TERM_GRACE) -> str:
    """Stop a worker process without ever blocking forever.

    Escalation ladder: ``terminate()`` (SIGTERM), wait up to ``grace``
    seconds, then ``kill()`` (SIGKILL), wait again.  A child that
    installed a SIGTERM handler — or ignores it outright — therefore
    cannot wedge the executor the way a bare ``terminate(); join()``
    could.  Returns the name of what ended the worker: ``"exit"`` if it
    was already dead, ``"SIGTERM"`` or ``"SIGKILL"`` otherwise.
    """
    if not process.is_alive():
        process.join(grace)
        return "exit"
    process.terminate()
    process.join(grace)
    if not process.is_alive():
        return "SIGTERM"
    process.kill()
    process.join(grace)
    return "SIGKILL"


@dataclass
class JobOutcome:
    """What happened to one job — always structured, never an excuse
    for an executor to hang or to silently drop a result."""

    spec: JobSpec
    index: int
    status: str
    payload: Optional[Dict[str, object]] = None
    meta: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    seconds: float = 0.0
    attempts: int = 1
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest of the outcome (reports, artifacts)."""
        return {
            "job_id": self.spec.job_id,
            "job": self.spec.describe(),
            "digest": self.spec.digest(),
            "status": self.status,
            "error": self.error,
            "seconds": round(self.seconds, 6),
            "attempts": self.attempts,
            "cached": self.cached,
        }


class SerialExecutor:
    """In-process, in-order execution — the determinism reference."""

    jobs = 1

    def run(self, specs: Sequence[JobSpec],
            on_result: Optional[OnResult] = None) -> List[JobOutcome]:
        outcomes: List[JobOutcome] = []
        for index, spec in enumerate(specs):
            if spec.kind == KIND_PROBE and spec.behavior in (
                    "crash", "hang", "stubborn"):
                raise ServeError(
                    f"probe behaviour {spec.behavior!r} would kill or "
                    "wedge the calling process; run it under a "
                    "PoolExecutor"
                )
            started = time.perf_counter()
            try:
                payload, meta = execute_spec(spec)
                outcome = JobOutcome(spec=spec, index=index,
                                     status=STATUS_OK, payload=payload,
                                     meta=meta,
                                     seconds=time.perf_counter() - started)
            except ReproError as error:
                outcome = JobOutcome(spec=spec, index=index,
                                     status=STATUS_ERROR, error=str(error),
                                     seconds=time.perf_counter() - started)
            except Exception as error:  # noqa: BLE001 - structured outcome
                outcome = JobOutcome(
                    spec=spec, index=index, status=STATUS_ERROR,
                    error=f"{type(error).__name__}: {error}",
                    seconds=time.perf_counter() - started)
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes


def _child_entry(payload: Dict[str, object], conn) -> None:
    """Worker-process body: run the job, report exactly one message."""
    try:
        result, meta = execute_payload(payload)
        conn.send((STATUS_OK, result, meta))
    except ReproError as error:
        conn.send((STATUS_ERROR, str(error), None))
    except Exception as error:  # noqa: BLE001 - report, don't die silent
        conn.send((STATUS_ERROR, f"{type(error).__name__}: {error}", None))
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - pipe already gone
            pass


@dataclass
class _Running:
    index: int
    process: multiprocessing.process.BaseProcess
    started: float


class PoolExecutor:
    """Process-parallel execution with timeouts and crash retries.

    Each job runs in its own fresh worker process (results travel over
    a dedicated pipe, so a dying worker can never corrupt another
    job's result), with at most ``jobs`` workers alive at a time:

    * a job exceeding ``timeout`` seconds is reaped — SIGTERM,
      escalating to SIGKILL after ``term_grace`` seconds, so even a
      child that ignores SIGTERM cannot wedge the pool — and surfaces
      as a ``timeout`` outcome naming the ending signal (no retry — a
      deterministic job that timed out once will time out again);
    * a worker that dies without reporting (hard crash) is retried up
      to ``retries`` times, then surfaces as ``crashed``;
    * a job that raises reports an ``error`` outcome.

    Jobs are launched in input order and results are returned in input
    order regardless of completion order.
    """

    def __init__(self, jobs: int = 2, timeout: Optional[float] = None,
                 retries: int = 1, start_method: Optional[str] = None,
                 term_grace: float = DEFAULT_TERM_GRACE):
        if jobs < 1:
            raise ServeError("PoolExecutor needs jobs >= 1")
        if timeout is not None and timeout <= 0:
            raise ServeError("per-job timeout must be positive")
        if retries < 0:
            raise ServeError("retries must be >= 0")
        if term_grace <= 0:
            raise ServeError("term_grace must be positive")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.term_grace = term_grace
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)

    def run(self, specs: Sequence[JobSpec],
            on_result: Optional[OnResult] = None) -> List[JobOutcome]:
        specs = list(specs)
        payloads = [spec.to_payload() for spec in specs]
        results: Dict[int, JobOutcome] = {}
        ready_queue = deque(range(len(specs)))
        running: Dict[object, _Running] = {}
        attempts = [0] * len(specs)

        def finish(outcome: JobOutcome) -> None:
            results[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        while len(results) < len(specs):
            while ready_queue and len(running) < self.jobs:
                index = ready_queue.popleft()
                attempts[index] += 1
                parent_conn, child_conn = self._context.Pipe(duplex=False)
                process = self._context.Process(
                    target=_child_entry,
                    args=(payloads[index], child_conn),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                running[parent_conn] = _Running(index, process,
                                                time.monotonic())

            if not running:
                continue
            # A connection becomes ready when the worker sends its
            # result *or* exits (EOF), so crashes wake us immediately;
            # the short timeout only bounds the per-job timeout check.
            for conn in connection_wait(list(running), timeout=0.05):
                job = running.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                conn.close()
                reap_process(job.process, self.term_grace)
                elapsed = time.monotonic() - job.started
                if message is None:
                    exit_code = job.process.exitcode
                    if attempts[job.index] <= self.retries:
                        ready_queue.append(job.index)
                        continue
                    finish(JobOutcome(
                        spec=specs[job.index], index=job.index,
                        status=STATUS_CRASHED,
                        error=(f"worker died without reporting "
                               f"(exit code {exit_code}) after "
                               f"{attempts[job.index]} attempt(s)"),
                        seconds=elapsed, attempts=attempts[job.index]))
                    continue
                status, data, meta = message
                if status == STATUS_OK:
                    finish(JobOutcome(
                        spec=specs[job.index], index=job.index,
                        status=STATUS_OK, payload=data, meta=meta,
                        seconds=elapsed, attempts=attempts[job.index]))
                else:
                    finish(JobOutcome(
                        spec=specs[job.index], index=job.index,
                        status=STATUS_ERROR, error=data,
                        seconds=elapsed, attempts=attempts[job.index]))

            if self.timeout is None:
                continue
            now = time.monotonic()
            for conn, job in list(running.items()):
                if now - job.started < self.timeout:
                    continue
                ended_by = reap_process(job.process, self.term_grace)
                conn.close()
                del running[conn]
                finish(JobOutcome(
                    spec=specs[job.index], index=job.index,
                    status=STATUS_TIMEOUT,
                    error=(f"job exceeded the {self.timeout:g}s per-job "
                           f"timeout and was terminated "
                           f"(worker ended by {ended_by})"),
                    seconds=now - job.started,
                    attempts=attempts[job.index]))

        return [results[index] for index in range(len(specs))]


def run_jobs(specs: Sequence[JobSpec],
             executor=None,
             cache=None,
             on_result: Optional[OnResult] = None) -> List[JobOutcome]:
    """Run a batch through ``executor`` with ``cache`` short-circuiting.

    Cache hits are reported first (zero-cost outcomes with
    ``cached=True``); misses go to the executor and successful fresh
    results are written back.  The returned list is in input order.
    """
    specs = list(specs)
    if executor is None:
        executor = SerialExecutor()
    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
    pending: List[JobSpec] = []
    pending_indices: List[int] = []
    for index, spec in enumerate(specs):
        payload = cache.get(spec) if cache is not None else None
        if payload is not None:
            outcome = JobOutcome(spec=spec, index=index, status=STATUS_OK,
                                 payload=payload, cached=True, attempts=0)
            outcomes[index] = outcome
            if on_result is not None:
                on_result(outcome)
        else:
            pending.append(spec)
            pending_indices.append(index)

    if pending:
        def forward(outcome: JobOutcome) -> None:
            outcome.index = pending_indices[outcome.index]
            if cache is not None and outcome.ok:
                cache.put(outcome.spec, outcome.payload)
            outcomes[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        executor.run(pending, on_result=forward)

    return [outcome for outcome in outcomes if outcome is not None]


def raise_for_failures(outcomes: Sequence[JobOutcome]) -> None:
    """Raise :class:`~repro.errors.ServeError` if any job failed.

    The message carries per-status counts and the first failing job's
    digest so a campaign log is actionable without re-running: the
    digest keys the cache record, `repro-serve verify`, and the chaos
    event log, and the counts say *how* the batch died (one poisoned
    spec vs. a wall of timeouts are very different incidents).
    """
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if not failures:
        return
    counts: Dict[str, int] = {}
    for outcome in failures:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    by_status = ", ".join(
        f"{status}={counts[status]}"
        for status in JOB_STATUSES if status in counts
    )
    first = failures[0]
    details = "; ".join(
        f"{outcome.spec.job_id} {outcome.status}"
        + (f" ({outcome.error})" if outcome.error else "")
        for outcome in failures[:5]
    )
    more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
    raise ServeError(
        f"{len(failures)} of {len(outcomes)} jobs failed ({by_status}; "
        f"first failure {first.spec.job_id} "
        f"digest {first.spec.digest()}): {details}{more}"
    )
