"""Content-addressed on-disk result cache.

Layout: one JSON record per result under the cache root, sharded by
the first two hex digits of the job digest::

    <root>/
      ab/
        ab3f...e1.json     # record for job digest ab3f...e1

Each record stores the schema version, the code-version salt it was
computed under, the job's canonical description (for debuggability and
`repro-serve verify`), and the deterministic result payload.  A record
whose salt or schema no longer matches is *invalidated* on read:
counted, deleted, and treated as a miss — a stale result must never be
replayed as fresh.

The **code salt** hashes every ``*.py`` source file of the installed
:mod:`repro` package, so any code change — a timing-model tweak, a
scheduler fix — automatically invalidates all cached results.  That is
deliberately aggressive: correctness of replayed results is worth more
than cache longevity.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import ServeError
from repro.serve.jobspec import JobSpec

#: Version of the on-disk record schema; a mismatch invalidates.
CACHE_SCHEMA_VERSION = 1

_code_salt_cache: Optional[str] = None


def code_salt() -> str:
    """Digest of the repro package's source tree (memoised).

    Stable across processes and platforms for identical sources: files
    are hashed in sorted relative-path order with their contents.
    """
    global _code_salt_cache
    if _code_salt_cache is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, _, filenames in sorted(os.walk(package_root)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                relative = os.path.relpath(path, package_root)
                digest.update(relative.replace(os.sep, "/").encode())
                digest.update(b"\x00")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\x00")
        _code_salt_cache = digest.hexdigest()
    return _code_salt_cache


@dataclass
class CacheStats:
    """Read/write accounting for one :class:`ResultCache` session.

    ``invalidations`` counts every record deleted on read;
    ``corrupt`` is the subset caused by *corruption* (truncated or
    unparsable records — e.g. a worker killed mid-``put`` on a
    filesystem without atomic replace) as opposed to salt/schema/digest
    mismatches, which are expected whenever the code changes.  A
    non-zero ``corrupt`` under the atomic writer points at real
    storage trouble and is worth alerting on.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalidations: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "invalidations": self.invalidations,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Content-addressed store of deterministic job results."""

    def __init__(self, root: str, salt: Optional[str] = None):
        self.root = root
        self.salt = code_salt() if salt is None else salt
        self.stats = CacheStats()
        os.makedirs(self.root, exist_ok=True)

    # -- paths ---------------------------------------------------------

    def path_for(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".json")

    # -- lookup --------------------------------------------------------

    def get(self, spec: JobSpec) -> Optional[Dict[str, object]]:
        """The cached payload for ``spec``, or None (miss/invalidated)."""
        return self.peek(spec.digest())

    def peek(self, digest: str) -> Optional[Dict[str, object]]:
        """The payload stored under a raw ``digest``, or None.

        Same validation path as :meth:`get` — a record that cannot be
        parsed (corruption), or whose schema/salt/digest no longer
        match, is invalidated and reported as a miss.  This is the
        daemon's cache-peek endpoint: clients hold job digests, not
        specs.
        """
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            # Unparsable bytes: a truncated or garbled record, not a
            # version mismatch.
            self._invalidate(path, corrupt=True)
            return None
        if not isinstance(record, dict) or "payload" not in record:
            self._invalidate(path, corrupt=True)
            return None
        if (record.get("schema") != CACHE_SCHEMA_VERSION
                or record.get("salt") != self.salt
                or record.get("digest") != digest):
            self._invalidate(path)
            return None
        self.stats.hits += 1
        return record["payload"]

    def _invalidate(self, path: str, corrupt: bool = False) -> None:
        self.stats.invalidations += 1
        if corrupt:
            self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - already gone / read-only
            pass

    # -- store ---------------------------------------------------------

    def put(self, spec: JobSpec, payload: Dict[str, object]) -> None:
        """Store a deterministic result payload for ``spec``.

        Writes are crash-safe: the record is rendered into a
        process-private temp file, flushed and fsynced, then moved onto
        the final path with atomic ``os.replace``.  A worker killed at
        any instant therefore leaves either the old record, the new
        record, or a stray ``*.tmp.<pid>`` file no reader ever looks
        at — never a truncated record on the live path.
        """
        if payload is None:
            raise ServeError("refusing to cache an empty payload")
        digest = spec.digest()
        path = self.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {
            "schema": CACHE_SCHEMA_VERSION,
            "salt": self.salt,
            "digest": digest,
            "job": spec.canonical(),
            "payload": payload,
        }
        temporary = path + f".tmp.{os.getpid()}"
        try:
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, path)
        except BaseException:
            try:
                os.remove(temporary)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    # -- inspection ----------------------------------------------------

    def digests(self) -> Iterator[str]:
        """Digests of every record currently on disk."""
        for directory, _, filenames in os.walk(self.root):
            for filename in sorted(filenames):
                if filename.endswith(".json"):
                    yield filename[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())
