"""Job execution: turn a :class:`~repro.serve.jobspec.JobSpec` into a
deterministic result payload.

:func:`execute_spec` is the single entry point; it runs in-process for
the :class:`~repro.serve.executors.SerialExecutor` and in a fresh
worker process for the :class:`~repro.serve.executors.PoolExecutor`
(via :func:`execute_payload`, which only needs a JSON dict and is
therefore safe under any multiprocessing start method).

Every job returns two dicts:

* ``payload`` — the **deterministic** result.  This is what the cache
  stores and what reports are diffed on; it must be a pure function of
  the job spec (no wall-clock times, no host names, no object ids).
* ``meta`` — non-deterministic measurement context (phase timings).
  Executors attach it to the outcome but it never enters the cache.

Heavy subsystem imports happen lazily inside the per-kind handlers so
that importing :mod:`repro.serve` stays cheap and cycle-free.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, Tuple

from repro.errors import ServeError
from repro.serve.jobspec import (
    KIND_BENCH,
    KIND_CAMPAIGN,
    KIND_PROBE,
    KIND_SWEEP,
    JobSpec,
)
from repro.workloads import WORKLOADS, WorkloadSpec

Payload = Dict[str, object]


def build_workload(spec: JobSpec) -> WorkloadSpec:
    """Rebuild the exact workload instance the job describes."""
    constructor = WORKLOADS[spec.workload]
    return constructor(*spec.workload_args)


def _execute_sweep(spec: JobSpec) -> Tuple[Payload, Payload]:
    from repro.fpga import estimate_costs
    from repro.harness.runner import run_on_epic

    workload = build_workload(spec)
    run = run_on_epic(workload, spec.config, validate=spec.validate,
                      max_cycles=spec.max_cycles, engine=spec.engine,
                      cycle_limit_ok=spec.cycle_limit_ok)
    estimate, clock_mhz = estimate_costs(spec.config)
    payload: Payload = {
        "workload": workload.name,
        "machine": run.machine,
        "cycles": run.cycles,
        "outcome": run.outcome,
        "slices": estimate.slices,
        "block_rams": estimate.block_rams,
        "clock_mhz": clock_mhz,
    }
    return payload, {}


class CheckerMemo:
    """LRU-bounded memo of compiled lockstep checkers.

    One MiniC -> IR -> EPIC compile, golden interpreter run and
    fault-free reference run per (workload, machine) pair per worker
    process, shared by every campaign shard the process executes.
    Under a forking executor a checker warmed in the parent is
    inherited by the workers for free.

    Warm persistent workers (PR 10) keep this memo alive across many
    jobs, so it must be *bounded*: the least-recently-used checker is
    evicted once the memo exceeds ``limit`` entries (the
    ``REPRO_CHECKER_MEMO`` env knob; checkers hold a compiled program,
    a golden machine and a checkpoint stream each, so a handful is
    already hundreds of MB on big workloads).  Eviction is a pure perf
    event — a rebuilt checker is deterministic, so outcome tables
    cannot observe it — and hit/miss/evict counts are surfaced in
    campaign job meta for the warm-pool telemetry.
    """

    DEFAULT_LIMIT = 8

    def __init__(self) -> None:
        from collections import OrderedDict

        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def limit(self) -> int:
        """Entry bound (``REPRO_CHECKER_MEMO`` env, read per lookup so
        long-lived workers honour re-tuning without a restart)."""
        try:
            limit = int(os.environ.get("REPRO_CHECKER_MEMO",
                                       self.DEFAULT_LIMIT))
        except ValueError:
            limit = self.DEFAULT_LIMIT
        return max(1, limit)

    def get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, checker: object) -> None:
        self._entries[key] = checker
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "limit": self.limit,
        }


#: The process-level campaign-checker memo (see :class:`CheckerMemo`).
_CHECKER_MEMO = CheckerMemo()


def worker_stats() -> Dict[str, object]:
    """In-process state a warm worker reports with every result:
    checker-memo counters plus this process's peak RSS, which the
    parent pool uses for its recycle-on-memory-ceiling policy."""
    rss_kb = 0
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
            rss_kb //= 1024
    except (ImportError, OSError):  # pragma: no cover - exotic host
        pass
    return {
        "rss_kb": int(rss_kb),
        "checker_memo": _CHECKER_MEMO.stats(),
    }


def checkpoints_enabled() -> bool:
    """Checkpoint fast-forwarding toggle (``REPRO_CHECKPOINTS`` env).

    A perf knob, not a result knob — outcome tables are byte-identical
    either way, which is why it travels out-of-band instead of in the
    job spec (whose digest keys the result cache).
    """
    return os.environ.get("REPRO_CHECKPOINTS", "1").lower() \
        not in ("0", "off", "no", "false")


def checkpoint_store():
    """Shared on-disk checkpoint store (``REPRO_CHECKPOINT_STORE`` env),
    or ``None`` to keep golden streams in-process only."""
    path = os.environ.get("REPRO_CHECKPOINT_STORE")
    if not path:
        return None
    from repro.core.snapshot import CheckpointStore

    return CheckpointStore(path)


def campaign_checker(spec: JobSpec):
    """The memoised lockstep checker for a campaign job."""
    from repro.reliability import LockstepChecker

    key = (spec.workload, spec.workload_args,
           json.dumps(spec.config.canonical(), sort_keys=True),
           spec.watchdog_factor, spec.max_cycles)
    checker = _CHECKER_MEMO.get(key)
    if checker is None:
        checker = LockstepChecker(build_workload(spec), spec.config,
                                  watchdog_factor=spec.watchdog_factor,
                                  max_cycles=spec.max_cycles,
                                  checkpoints=checkpoints_enabled(),
                                  checkpoint_store=checkpoint_store())
        _CHECKER_MEMO.put(key, checker)
    return checker


def _execute_campaign(spec: JobSpec) -> Tuple[Payload, Payload]:
    from repro.harness.faultcampaign import generate_faults, result_payload

    started = time.perf_counter()
    memo_hits_before = _CHECKER_MEMO.hits
    checker = campaign_checker(spec)
    memo_hit = _CHECKER_MEMO.hits > memo_hits_before
    before = checker.fastforward_stats()
    faults = generate_faults(checker, spec.n, spec.seed, spec.spaces)
    stop = spec.n if spec.fault_count < 0 \
        else min(spec.n, spec.fault_offset + spec.fault_count)
    sliced = faults[spec.fault_offset:stop]
    vstats = None
    if spec.engine == "vector":
        results, vstats = checker.run_batch(sliced)
        outcomes = [result_payload(result) for result in results]
    else:
        outcomes = [result_payload(checker.run_one(fault))
                    for fault in sliced]
    payload: Payload = {
        "workload": checker.spec.name,
        "machine": f"EPIC-{spec.config.n_alus}ALU",
        "n": spec.n,
        "seed": spec.seed,
        "fault_offset": spec.fault_offset,
        "reference_cycles": checker.reference_cycles,
        "outcomes": outcomes,
    }
    after = checker.fastforward_stats()
    elapsed = time.perf_counter() - started
    meta: Payload = {
        "engine": spec.engine,
        "elapsed_s": elapsed,
        "faults_run": len(outcomes),
        "faults_per_s": len(outcomes) / elapsed if elapsed > 0 else 0.0,
        "checkpointed": bool(checker.checkpoints),
        "ff_restores": after["restores"] - before["restores"],
        "ff_cycles_skipped":
            after["cycles_skipped"] - before["cycles_skipped"],
        "ff_convergence_cuts":
            after["convergence_cuts"] - before["convergence_cuts"],
        "checker_memo_hit": memo_hit,
        "checker_memo": _CHECKER_MEMO.stats(),
    }
    if vstats is not None:
        meta.update({
            "vector_faults": vstats["vector_faults"],
            "vector_scalar_faults": vstats["scalar_faults"],
            "vector_cuts": vstats["cuts"],
            "vector_jumps": vstats["jumps"],
            "lanes_retired": dict(vstats["retired"]),
            "vector_lane_cycles": vstats["lane_cycles"],
            "vector_lane_capacity": vstats["lane_capacity"],
            "vector_wasted_cycles": vstats["wasted_lane_cycles"],
            "rewalk_lanes": vstats["rewalk_lanes"],
            "rewalk_groups": vstats["rewalk_groups"],
            "rewalk_lane_cycles": vstats["rewalk_lane_cycles"],
            "engine_downgrade_reason": vstats["engine_downgrade_reason"],
            "vector_numpy": vstats["numpy"],
        })
    return payload, meta


#: JobSpec engine names -> bench_cell engine tuples.
_BENCH_ENGINE_SETS = {
    "all": ("instrumented", "fast", "trace"),
    "auto": ("instrumented", "fast", "trace"),
    "both": ("instrumented", "fast"),
    "reference": ("instrumented",),
    "instrumented": ("instrumented",),
    "fast": ("fast",),
    "trace": ("trace",),
}


def _execute_bench(spec: JobSpec) -> Tuple[Payload, Payload]:
    from repro.perf.bench import TIMING_FIELDS, bench_cell

    workload = build_workload(spec)
    cell = bench_cell(workload, spec.config.n_alus,
                      max_cycles=spec.max_cycles,
                      engines=_BENCH_ENGINE_SETS[spec.engine])
    payload: Payload = {
        "benchmark": cell["benchmark"],
        "machine": cell["machine"],
        "cycles": cell["cycles"],
        "ilp": cell["ilp"],
        "fingerprint": cell["fingerprint"],
    }
    meta: Payload = {key: cell[key] for key in TIMING_FIELDS}
    return payload, meta


def _execute_probe(spec: JobSpec) -> Tuple[Payload, Payload]:
    if spec.behavior == "ok":
        return {"value": spec.seed}, {}
    if spec.behavior == "sleep":
        time.sleep(spec.seconds)
        return {"value": spec.seed}, {}
    if spec.behavior == "fail":
        raise ServeError("probe job asked to fail")
    if spec.behavior == "crash":
        # Simulated hard worker death: no exception propagates, no
        # result is ever reported.  (Only meaningful under a process
        # executor; the serial executor refuses to run it.)
        os._exit(13)
    if spec.behavior == "stubborn":
        # Ignore SIGTERM *and* hang: only a SIGKILL escalation can end
        # this worker.  (Only meaningful under a process executor.)
        import signal

        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    # "hang"/"stubborn": spin until the executor reaps us.
    while True:  # pragma: no cover - exercised via PoolExecutor timeout
        time.sleep(0.05)


_HANDLERS = {
    KIND_SWEEP: _execute_sweep,
    KIND_CAMPAIGN: _execute_campaign,
    KIND_BENCH: _execute_bench,
    KIND_PROBE: _execute_probe,
}


def execute_spec(spec: JobSpec) -> Tuple[Payload, Payload]:
    """Run one job; returns ``(deterministic payload, timing meta)``."""
    return _HANDLERS[spec.kind](spec)


def execute_payload(payload: Payload) -> Tuple[Payload, Payload]:
    """Worker-process entry point: payload dict in, result dicts out."""
    return execute_spec(JobSpec.from_payload(payload))
