"""Job execution: turn a :class:`~repro.serve.jobspec.JobSpec` into a
deterministic result payload.

:func:`execute_spec` is the single entry point; it runs in-process for
the :class:`~repro.serve.executors.SerialExecutor` and in a fresh
worker process for the :class:`~repro.serve.executors.PoolExecutor`
(via :func:`execute_payload`, which only needs a JSON dict and is
therefore safe under any multiprocessing start method).

Every job returns two dicts:

* ``payload`` — the **deterministic** result.  This is what the cache
  stores and what reports are diffed on; it must be a pure function of
  the job spec (no wall-clock times, no host names, no object ids).
* ``meta`` — non-deterministic measurement context (phase timings).
  Executors attach it to the outcome but it never enters the cache.

Heavy subsystem imports happen lazily inside the per-kind handlers so
that importing :mod:`repro.serve` stays cheap and cycle-free.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Tuple

from repro.errors import ServeError
from repro.serve.jobspec import (
    KIND_BENCH,
    KIND_CAMPAIGN,
    KIND_PROBE,
    KIND_SWEEP,
    JobSpec,
)
from repro.workloads import WORKLOADS, WorkloadSpec

Payload = Dict[str, object]


def build_workload(spec: JobSpec) -> WorkloadSpec:
    """Rebuild the exact workload instance the job describes."""
    constructor = WORKLOADS[spec.workload]
    return constructor(*spec.workload_args)


def _execute_sweep(spec: JobSpec) -> Tuple[Payload, Payload]:
    from repro.fpga import estimate_clock_mhz, estimate_resources
    from repro.harness.runner import run_on_epic

    workload = build_workload(spec)
    run = run_on_epic(workload, spec.config, validate=spec.validate,
                      max_cycles=spec.max_cycles, engine=spec.engine)
    estimate = estimate_resources(spec.config)
    payload: Payload = {
        "workload": workload.name,
        "machine": run.machine,
        "cycles": run.cycles,
        "slices": estimate.slices,
        "block_rams": estimate.block_rams,
        "clock_mhz": estimate_clock_mhz(spec.config),
    }
    return payload, {}


def _execute_campaign(spec: JobSpec) -> Tuple[Payload, Payload]:
    from repro.harness.faultcampaign import generate_faults, result_payload
    from repro.reliability import LockstepChecker

    workload = build_workload(spec)
    checker = LockstepChecker(workload, spec.config,
                              watchdog_factor=spec.watchdog_factor,
                              max_cycles=spec.max_cycles)
    faults = generate_faults(checker, spec.n, spec.seed, spec.spaces)
    stop = spec.n if spec.fault_count < 0 \
        else min(spec.n, spec.fault_offset + spec.fault_count)
    outcomes = [
        result_payload(checker.run_one(fault))
        for fault in faults[spec.fault_offset:stop]
    ]
    payload: Payload = {
        "workload": workload.name,
        "machine": f"EPIC-{spec.config.n_alus}ALU",
        "n": spec.n,
        "seed": spec.seed,
        "fault_offset": spec.fault_offset,
        "reference_cycles": checker.reference_cycles,
        "outcomes": outcomes,
    }
    return payload, {}


#: JobSpec engine names -> bench_cell engine tuples.
_BENCH_ENGINE_SETS = {
    "all": ("instrumented", "fast", "trace"),
    "auto": ("instrumented", "fast", "trace"),
    "both": ("instrumented", "fast"),
    "reference": ("instrumented",),
    "instrumented": ("instrumented",),
    "fast": ("fast",),
    "trace": ("trace",),
}


def _execute_bench(spec: JobSpec) -> Tuple[Payload, Payload]:
    from repro.perf.bench import TIMING_FIELDS, bench_cell

    workload = build_workload(spec)
    cell = bench_cell(workload, spec.config.n_alus,
                      max_cycles=spec.max_cycles,
                      engines=_BENCH_ENGINE_SETS[spec.engine])
    payload: Payload = {
        "benchmark": cell["benchmark"],
        "machine": cell["machine"],
        "cycles": cell["cycles"],
        "ilp": cell["ilp"],
        "fingerprint": cell["fingerprint"],
    }
    meta: Payload = {key: cell[key] for key in TIMING_FIELDS}
    return payload, meta


def _execute_probe(spec: JobSpec) -> Tuple[Payload, Payload]:
    if spec.behavior == "ok":
        return {"value": spec.seed}, {}
    if spec.behavior == "sleep":
        time.sleep(spec.seconds)
        return {"value": spec.seed}, {}
    if spec.behavior == "fail":
        raise ServeError("probe job asked to fail")
    if spec.behavior == "crash":
        # Simulated hard worker death: no exception propagates, no
        # result is ever reported.  (Only meaningful under a process
        # executor; the serial executor refuses to run it.)
        os._exit(13)
    # "hang": spin until the executor's per-job timeout reaps us.
    while True:  # pragma: no cover - exercised via PoolExecutor timeout
        time.sleep(0.05)


_HANDLERS = {
    KIND_SWEEP: _execute_sweep,
    KIND_CAMPAIGN: _execute_campaign,
    KIND_BENCH: _execute_bench,
    KIND_PROBE: _execute_probe,
}


def execute_spec(spec: JobSpec) -> Tuple[Payload, Payload]:
    """Run one job; returns ``(deterministic payload, timing meta)``."""
    return _HANDLERS[spec.kind](spec)


def execute_payload(payload: Payload) -> Tuple[Payload, Payload]:
    """Worker-process entry point: payload dict in, result dicts out."""
    return execute_spec(JobSpec.from_payload(payload))
