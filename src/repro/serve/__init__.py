"""``repro.serve``: a parallel job executor with a content-addressed
result cache for sweeps, campaigns and benches.

Every heavy workload in the repo — Table-1 cells, design-space sweeps,
fault-injection campaigns, host-performance benches — decomposes into
pure, independent evaluations of a (workload, machine configuration,
seed) triple.  This package turns those evaluations into first-class
*jobs*:

* :class:`~repro.serve.jobspec.JobSpec` — a canonical, hashable,
  JSON-serialisable description of one evaluation, with a stable
  content digest;
* :class:`~repro.serve.executors.SerialExecutor` /
  :class:`~repro.serve.executors.PoolExecutor` — pluggable engines
  that run a batch of jobs (in-process, or fanned out over worker
  processes with per-job timeouts and bounded crash retries) and
  always return results **in input order**, never completion order;
* :class:`~repro.serve.cache.ResultCache` — a content-addressed
  on-disk store of job results keyed by job digest and a code-version
  salt, with hit/miss/invalidation statistics;
* :class:`~repro.serve.supervisor.SupervisedPool` — the pool hardened
  into a fault-tolerant fabric: worker heartbeats + hung-worker
  watchdog (SIGTERM -> SIGKILL reap escalation), retries with
  deterministic exponential backoff, poison-job quarantine, and
  graceful degradation to in-process execution when spawning fails —
  plus a **warm mode** (``warm=True``) of long-lived worker
  incarnations with affinity routing, so compile caches and memoised
  checkers survive across jobs (recycled after N jobs / an RSS
  ceiling, with reuse/affinity telemetry);
* :mod:`repro.serve.daemon` — a long-running HTTP/JSON job service
  (submit batches, stream results, peek the cache by digest) with a
  bounded back-pressured queue, per-client quotas, a durable spool,
  and drain/restart semantics that keep every job exactly-once;
* :mod:`repro.serve.chaos` — deterministic *infrastructure* fault
  injection (worker kills/hangs, cache corruption, dropped
  connections) plus the differential harness proving none of it can
  change an outcome table;
* the ``repro-serve`` CLI (:mod:`repro.serve.cli`) — runs batch files
  of jobs, reports throughput, and warms or verifies the cache.

The hard contract is **determinism**: for every integration
(:func:`repro.explore.sweep.sweep_configs`,
:func:`repro.explore.reliability.reliability_sweep`,
:func:`repro.harness.faultcampaign.run_campaign`,
:func:`repro.perf.bench.run_bench`) the parallel and cache-replayed
outputs are byte-identical to the serial outputs.  Seeds live in the
job specs themselves (derived with the repo's deterministic
:class:`~repro.workloads.XorShift32` at batch-construction time), so
scheduling order can never leak into a result.
"""

from repro.serve.jobspec import (
    JOB_KINDS,
    KIND_BENCH,
    KIND_CAMPAIGN,
    KIND_PROBE,
    KIND_SWEEP,
    JobSpec,
    bench_job,
    campaign_job,
    derive_seeds,
    dump_batch,
    load_batch,
    shard_campaign,
    sweep_job,
)
from repro.serve.executors import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_TIMEOUT,
    JobOutcome,
    PoolExecutor,
    SerialExecutor,
    raise_for_failures,
    reap_process,
    run_jobs,
)
from repro.serve.supervisor import SupervisedPool
from repro.serve.cache import CacheStats, ResultCache, code_salt
from repro.serve.worker import CheckerMemo, execute_spec, worker_stats

__all__ = [
    "JOB_KINDS",
    "KIND_BENCH",
    "KIND_CAMPAIGN",
    "KIND_PROBE",
    "KIND_SWEEP",
    "JobSpec",
    "bench_job",
    "campaign_job",
    "derive_seeds",
    "dump_batch",
    "load_batch",
    "shard_campaign",
    "sweep_job",
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_POISONED",
    "STATUS_TIMEOUT",
    "JobOutcome",
    "PoolExecutor",
    "SerialExecutor",
    "SupervisedPool",
    "raise_for_failures",
    "reap_process",
    "run_jobs",
    "CacheStats",
    "CheckerMemo",
    "ResultCache",
    "code_salt",
    "execute_spec",
    "worker_stats",
]
