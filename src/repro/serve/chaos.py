"""``repro.serve.chaos``: deterministic infrastructure fault injection.

PR 1 injects faults into the *simulated machine*; this module injects
them into the **simulator's own serving infrastructure** — and proves,
differentially, that none of it can corrupt a result:

* **worker kill** — a worker dies mid-job without reporting (models a
  machine loss / OOM kill);
* **worker hang** — a worker wedges *silently* (no heartbeats), so the
  :class:`~repro.serve.supervisor.SupervisedPool` watchdog must reap
  it;
* **cache corruption** — a freshly written result record is truncated
  on disk (models a torn write on a non-atomic filesystem), so the
  next reader must detect, invalidate and recompute;
* **connection drop** — the daemon slams an HTTP connection shut
  before responding, so clients must retry.

Every decision is a pure function of ``(seed, injection point, key)``
via SHA-256 — **never** of wall clock, pid, or scheduling order — so a
chaos campaign is exactly reproducible, and two runs at the same seed
inject the same faults no matter how the pool schedules workers.

The capstone is :func:`run_chaos_differential`: run a sweep, a sharded
fault campaign and a bench batch under chaos three ways — on the warm
persistent pool (faulting long-lived worker incarnations mid-stream),
on the fresh-process pool, and replayed through a corruptible cache —
and require every outcome table to be **byte-identical** to a clean
``SerialExecutor`` run.
``python -m repro.serve.chaos`` wraps it for CI with a global watchdog
bound, a JSON report and the chaos event log as an artifact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import threading
from typing import Dict, List, Optional, Sequence

from repro.errors import ServeError
from repro.serve.cache import ResultCache
from repro.serve.executors import (
    JobOutcome,
    SerialExecutor,
    raise_for_failures,
    run_jobs,
)
from repro.serve.jobspec import (
    JobSpec,
    bench_job,
    campaign_job,
    shard_campaign,
    sweep_job,
)
from repro.serve.supervisor import CHAOS_HANG, CHAOS_KILL, SupervisedPool


class ChaosLog:
    """Append-only, thread-safe record of every injected fault."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def record(self, event: str, **fields: object) -> None:
        with self._lock:
            self.events.append({"event": event, **fields})

    def counts(self) -> Dict[str, int]:
        with self._lock:
            totals: Dict[str, int] = {}
            for entry in self.events:
                name = str(entry["event"])
                totals[name] = totals.get(name, 0) + 1
            return totals

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            events = list(self.events)
        return {"version": 1, "counts": self.counts(), "events": events}

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class ChaosMonkey:
    """Seed-driven infrastructure fault injector.

    Rates are probabilities in [0, 1] evaluated independently per
    injection point.  ``max_faults_per_job`` bounds how many attempts
    of one job may be faulted (kill or hang), so a pool configured with
    ``retries >= max_faults_per_job`` is *guaranteed* to converge —
    chaos perturbs the path, never the destination.  Cache corruption
    fires at most once per digest for the same reason.
    """

    def __init__(self, seed: int = 1,
                 kill_rate: float = 0.0, hang_rate: float = 0.0,
                 corrupt_rate: float = 0.0, drop_rate: float = 0.0,
                 max_faults_per_job: int = 1,
                 log: Optional[ChaosLog] = None):
        for name, rate in (("kill_rate", kill_rate),
                           ("hang_rate", hang_rate),
                           ("corrupt_rate", corrupt_rate),
                           ("drop_rate", drop_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ServeError(f"{name} must be in [0, 1], got {rate}")
        if kill_rate + hang_rate > 1.0:
            raise ServeError("kill_rate + hang_rate cannot exceed 1")
        if max_faults_per_job < 0:
            raise ServeError("max_faults_per_job must be >= 0")
        self.seed = seed
        self.kill_rate = kill_rate
        self.hang_rate = hang_rate
        self.corrupt_rate = corrupt_rate
        self.drop_rate = drop_rate
        self.max_faults_per_job = max_faults_per_job
        self.log = log if log is not None else ChaosLog()
        self._corrupted: set = set()
        self._drops: Dict[object, int] = {}
        self._lock = threading.Lock()

    def _draw(self, point: str, *key: object) -> float:
        """Uniform [0, 1) from (seed, injection point, key) — pure."""
        material = ":".join([str(self.seed), point]
                            + [str(part) for part in key])
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    # -- injection points ---------------------------------------------

    def worker_directive(self, digest: str,
                         attempt: int) -> Optional[str]:
        """Fault (or not) one worker attempt: 'kill', 'hang' or None."""
        if attempt > self.max_faults_per_job:
            return None
        roll = self._draw("worker", digest, attempt)
        if roll < self.kill_rate:
            self.log.record("kill-worker", digest=digest, attempt=attempt)
            return CHAOS_KILL
        if roll < self.kill_rate + self.hang_rate:
            self.log.record("hang-worker", digest=digest, attempt=attempt)
            return CHAOS_HANG
        return None

    def should_corrupt(self, digest: str) -> bool:
        """Corrupt the freshly written record for ``digest``? (once)"""
        with self._lock:
            if digest in self._corrupted:
                return False
            if self._draw("corrupt", digest) >= self.corrupt_rate:
                return False
            self._corrupted.add(digest)
        self.log.record("corrupt-cache-record", digest=digest)
        return True

    def should_drop(self, method: str, path: str) -> bool:
        """Drop this HTTP request's connection before responding?

        At most ``max_faults_per_job`` drops per (method, path), so a
        client with bounded retries always gets through eventually.
        """
        key = (method, path)
        with self._lock:
            count = self._drops.get(key, 0)
            if count >= self.max_faults_per_job:
                return False
            if self._draw("drop", method, path, count) >= self.drop_rate:
                return False
            self._drops[key] = count + 1
        self.log.record("drop-connection", method=method, path=path,
                        occurrence=count + 1)
        return True


class ChaosResultCache(ResultCache):
    """A :class:`ResultCache` whose writes may be torn by chaos.

    After a successful (atomic) ``put``, the monkey may truncate the
    record in place — simulating the torn write the atomic writer
    prevents — so the *next* reader must take the corruption path:
    detect, count, invalidate, recompute.
    """

    def __init__(self, root: str, chaos: ChaosMonkey,
                 salt: Optional[str] = None):
        super().__init__(root, salt=salt)
        self.chaos = chaos

    def put(self, spec: JobSpec, payload: Dict[str, object]) -> None:
        super().put(spec, payload)
        digest = spec.digest()
        if self.chaos.should_corrupt(digest):
            path = self.path_for(digest)
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))


# -- the differential harness ------------------------------------------

def chaos_smoke_jobs(alus: Sequence[int] = (1, 2),
                     campaign_n: int = 6, campaign_shards: int = 3,
                     seed: int = 1) -> List[JobSpec]:
    """The standard chaos workload: sweep + sharded campaign + bench.

    Quick-size inputs throughout (chaos exercises the *fabric*, not the
    simulator), covering all three result-table shapes the serving
    layer can produce.
    """
    from repro.config import epic_with_alus
    from repro.harness.cli import quick_specs

    sha, dijkstra = quick_specs(["SHA", "Dijkstra"])
    jobs: List[JobSpec] = []
    for n_alus in alus:
        jobs.append(sweep_job(sha, epic_with_alus(n_alus)))
        jobs.append(sweep_job(dijkstra, epic_with_alus(n_alus)))
    whole = campaign_job(sha, epic_with_alus(max(alus)), campaign_n, seed)
    jobs.extend(shard_campaign(whole, campaign_shards))
    jobs.append(bench_job(sha, epic_with_alus(min(alus)), engine="fast"))
    return jobs


def outcome_table(outcomes: Sequence[JobOutcome]) -> str:
    """Canonical byte form of a batch's deterministic results."""
    return json.dumps(
        [{"digest": outcome.spec.digest(), "status": outcome.status,
          "payload": outcome.payload} for outcome in outcomes],
        sort_keys=True, separators=(",", ":"))


def run_chaos_differential(specs: Sequence[JobSpec],
                           cache_root: str,
                           seed: int = 7, jobs: int = 2,
                           kill_rate: float = 0.35,
                           hang_rate: float = 0.2,
                           corrupt_rate: float = 0.5,
                           heartbeat: float = 0.1,
                           watchdog: float = 1.0,
                           timeout: Optional[float] = 120.0,
                           log: Optional[ChaosLog] = None
                           ) -> Dict[str, object]:
    """Prove chaos cannot touch a result table.

    1. Clean baseline: ``SerialExecutor``, no cache.
    2. Warm chaos run: ``SupervisedPool(warm=True)`` with worker
       kill/hang injection and no cache — chaos faults persistent
       worker *incarnations* mid-stream (an incarnation may die with
       warm state covering many served keys) and the fabric must
       rebuild on fresh incarnations without a byte of drift.
    3. Fresh chaos run: one-process-per-job ``SupervisedPool`` with the
       same injection, writing through a cache whose records chaos may
       corrupt.
    4. Replay: same batch again — cache hits except where records were
       corrupted, which must be detected and recomputed.

    All four outcome tables must be byte-identical.  Returns a JSON
    report; raises :class:`~repro.errors.ServeError` if any job fails
    outright.
    """
    specs = list(specs)
    monkey = ChaosMonkey(seed=seed, kill_rate=kill_rate,
                         hang_rate=hang_rate, corrupt_rate=corrupt_rate,
                         max_faults_per_job=1, log=log)
    baseline = SerialExecutor().run(specs)
    raise_for_failures(baseline)

    # Warm leg: same seed => the same (digest, attempt) draws fire, so
    # the exact faults the fresh pool survives also hit warm workers.
    warm_monkey = ChaosMonkey(seed=seed, kill_rate=kill_rate,
                              hang_rate=hang_rate,
                              max_faults_per_job=1, log=monkey.log)
    with SupervisedPool(
            jobs=jobs, timeout=timeout,
            retries=warm_monkey.max_faults_per_job + 1,
            heartbeat=heartbeat, watchdog=watchdog,
            backoff_base=0.01, backoff_cap=0.1,
            term_grace=1.0, chaos=warm_monkey, warm=True) as warm_pool:
        warm = warm_pool.run(specs)
        raise_for_failures(warm)
        warm_telemetry = warm_pool.telemetry()

    cache = ChaosResultCache(cache_root, monkey)
    pool = SupervisedPool(
        jobs=jobs, timeout=timeout,
        retries=monkey.max_faults_per_job + 1,
        heartbeat=heartbeat, watchdog=watchdog,
        backoff_base=0.01, backoff_cap=0.1,
        term_grace=1.0, chaos=monkey)
    chaotic = run_jobs(specs, executor=pool, cache=cache)
    raise_for_failures(chaotic)
    replay = run_jobs(specs, executor=pool, cache=cache)
    raise_for_failures(replay)

    tables = {
        "serial": outcome_table(baseline),
        "warm": outcome_table(warm),
        "chaos": outcome_table(chaotic),
        "replay": outcome_table(replay),
    }
    identical = tables["serial"] == tables["warm"] \
        == tables["chaos"] == tables["replay"]
    faulted = sum(1 for outcome in chaotic if outcome.attempts > 1)
    warm_telemetry.pop("workers", None)  # per-incarnation detail
    return {
        "generated_by": "repro.serve.chaos",
        "identical": identical,
        "jobs": len(specs),
        "faulted_jobs": faulted,
        "warm_faulted_jobs": sum(1 for outcome in warm
                                 if outcome.attempts > 1),
        "warm_telemetry": warm_telemetry,
        "replay_hits": sum(1 for outcome in replay if outcome.cached),
        "chaos_seed": seed,
        "chaos_events": monkey.log.counts(),
        "cache": cache.stats.as_dict(),
        "table_bytes": len(tables["serial"]),
        "tables_sha256": {
            name: hashlib.sha256(table.encode()).hexdigest()
            for name, table in tables.items()
        },
    }


def _arm_global_watchdog(max_seconds: float) -> None:
    """Hard wall-clock bound: no chaos scenario may hang the harness."""
    def overrun() -> None:  # pragma: no cover - only fires on a hang
        print(f"repro.serve.chaos: global watchdog fired after "
              f"{max_seconds:g}s — aborting", file=sys.stderr)
        os._exit(3)

    timer = threading.Timer(max_seconds, overrun)
    timer.daemon = True
    timer.start()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.chaos",
        description="Differential chaos campaign: inject worker kills, "
                    "hangs and cache corruption, and require outcome "
                    "tables byte-identical to a clean serial run.",
    )
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos seed (default 7)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool workers (default 2)")
    parser.add_argument("--kill-rate", type=float, default=0.35)
    parser.add_argument("--hang-rate", type=float, default=0.2)
    parser.add_argument("--corrupt-rate", type=float, default=0.5)
    parser.add_argument("--alus", nargs="*", type=int, default=[1, 2],
                        help="ALU counts for the sweep/bench legs")
    parser.add_argument("--campaign-n", type=int, default=6,
                        help="injections in the campaign leg")
    parser.add_argument("--shards", type=int, default=3,
                        help="campaign shard count")
    parser.add_argument("--cache", default=None,
                        help="cache root (default: a fresh temp dir)")
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument("--log", help="write the chaos event log here")
    parser.add_argument("--max-seconds", type=float, default=600.0,
                        help="global watchdog bound (default 600)")
    arguments = parser.parse_args(argv)

    _arm_global_watchdog(arguments.max_seconds)
    log = ChaosLog()
    cache_root = arguments.cache
    if cache_root is None:
        import tempfile

        cache_root = tempfile.mkdtemp(prefix="repro-chaos-cache-")
    try:
        specs = chaos_smoke_jobs(alus=tuple(arguments.alus),
                                 campaign_n=arguments.campaign_n,
                                 campaign_shards=arguments.shards)
        report = run_chaos_differential(
            specs, cache_root, seed=arguments.seed, jobs=arguments.jobs,
            kill_rate=arguments.kill_rate, hang_rate=arguments.hang_rate,
            corrupt_rate=arguments.corrupt_rate, log=log)
    except ServeError as error:
        print(f"repro.serve.chaos: {error}", file=sys.stderr)
        if arguments.log:
            log.write(arguments.log)
        return 1
    if arguments.out:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if arguments.log:
        log.write(arguments.log)
    events = ", ".join(f"{name} x{count}" for name, count
                       in sorted(report["chaos_events"].items())) \
        or "no faults fired"
    print(f"chaos differential over {report['jobs']} job(s): {events}; "
          f"{report['faulted_jobs']} job(s) retried, "
          f"{report['cache']['corrupt']} corrupt record(s) detected")
    if not report["identical"]:
        print("repro.serve.chaos: OUTCOME TABLES DIVERGED under chaos "
              f"(sha256 {report['tables_sha256']})", file=sys.stderr)
        return 1
    print("outcome tables byte-identical: serial == warm == chaos == "
          f"replay (sha256 {report['tables_sha256']['serial'][:16]}...)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
