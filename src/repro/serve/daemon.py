"""``repro.serve.daemon``: a long-running, fault-tolerant job service.

The ROADMAP's "network serve tier": JobSpecs are canonical, digested
and shardable, and the ResultCache is content-addressed — this module
puts an HTTP/JSON front-end (stdlib ``http.server``, no new
dependencies) and a supervised execution fabric behind them.

API (all JSON)::

    POST /v1/batches              submit {"client": c, "jobs": [spec...]}
                                  -> 202 {"batch": id, "digests": [...]}
                                  -> 429 + Retry-After on back-pressure
    GET  /v1/batches/<id>?since=N poll/stream results incrementally
    GET  /v1/results/<digest>     peek the result cache by job digest
    GET  /v1/status               queue depth, quotas, executor health
    POST /v1/drain                graceful drain (finish queue, refuse
                                  new work, then exit)

Design points:

* **bounded submission queue with back-pressure** — at most
  ``max_queue`` jobs may be pending across all batches; excess
  submissions are refused with HTTP 429 and a ``Retry-After`` estimate
  derived from observed job latency, and per-client quotas
  (``max_client_jobs``) keep one client from starving the rest.
* **durable exactly-once work** — every accepted batch is spooled to
  disk *before* the daemon acknowledges it, and every completed job
  lands in the content-addressed ResultCache.  Kill the daemon at any
  instant — SIGKILL included — restart it on the same spool, and the
  queue reloads: finished jobs replay from the cache, unfinished jobs
  re-execute, and the merged results contain every job exactly once
  (the digest is the dedup key).
* **supervised execution** — jobs run on a
  :class:`~repro.serve.supervisor.SupervisedPool` (heartbeats,
  watchdog, backoff, poison quarantine, serial degradation), so no
  worker failure can hang the service or corrupt a result.
* **graceful drain** — ``POST /v1/drain`` (or SIGTERM under the CLI)
  stops intake, finishes or persists queued work, then shuts down.

``python -m repro.serve.daemon --spool DIR`` runs it; see
:class:`DaemonClient` for the matching client (with bounded retries,
so chaos-injected connection drops are survivable).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence

from repro.errors import (
    DaemonError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    ServeError,
)
from repro.serve.cache import ResultCache
from repro.serve.executors import JobOutcome, run_jobs
from repro.serve.jobspec import JobSpec
from repro.serve.supervisor import SupervisedPool

#: Version of the daemon's wire and spool formats.
DAEMON_VERSION = 1

_BATCH_ID = re.compile(r"^b\d{6,}$")

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"


def _atomic_write_json(path: str, payload: Dict[str, object]) -> None:
    temporary = path + f".tmp.{os.getpid()}"
    try:
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    except BaseException:
        try:
            os.remove(temporary)
        except OSError:
            pass
        raise


@dataclass
class _Batch:
    batch_id: str
    client: str
    specs: List[JobSpec]
    state: str = STATE_QUEUED
    #: Completion-order result entries (the poll/stream payload).
    stream: List[Dict[str, object]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def completed(self) -> int:
        return len(self.stream)


def _outcome_entry(outcome: JobOutcome, order: int) -> Dict[str, object]:
    return {
        "order": order,
        "index": outcome.index,
        "job_id": outcome.spec.job_id,
        "digest": outcome.spec.digest(),
        "status": outcome.status,
        "cached": outcome.cached,
        "attempts": outcome.attempts,
        "seconds": round(outcome.seconds, 6),
        "error": outcome.error,
        "payload": outcome.payload,
    }


class ServeDaemon:
    """The job service: spool, queue, scheduler, cache, HTTP front-end.

    Thread layout: one scheduler thread drains the batch queue through
    the executor; a ``ThreadingHTTPServer`` answers the API; the two
    meet only under ``self._lock``.  The daemon is SIGKILL-safe by
    construction — all durable state (spooled batches, done markers,
    cache records) is written atomically before it is relied on.
    """

    def __init__(self, spool: str,
                 cache_root: Optional[str] = None,
                 executor: Optional[SupervisedPool] = None,
                 max_queue: int = 256,
                 max_client_jobs: Optional[int] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 chaos=None):
        if max_queue < 1:
            raise ServeError("max_queue must be >= 1")
        if max_client_jobs is not None and max_client_jobs < 1:
            raise ServeError("max_client_jobs must be >= 1")
        self.spool = spool
        self.batch_dir = os.path.join(spool, "batches")
        self.done_dir = os.path.join(spool, "done")
        os.makedirs(self.batch_dir, exist_ok=True)
        os.makedirs(self.done_dir, exist_ok=True)
        self.cache = ResultCache(cache_root
                                 or os.path.join(spool, "cache"))
        self.executor = executor if executor is not None \
            else SupervisedPool(jobs=2, warm=True)
        self.max_queue = max_queue
        self.max_client_jobs = max_client_jobs
        self.host = host
        self.port = port
        self.chaos = chaos
        self.started_batches = 0
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._queue: deque = deque()
        self._batches: Dict[str, _Batch] = {}
        self._pending_jobs = 0
        self._next_batch = 1
        self._draining = False
        self._drained = threading.Event()
        self._stopping = False
        #: Per-job-kind EWMA of observed (uncached) job duration; a
        #: campaign shard and a probe differ by orders of magnitude, so
        #: one global average made Retry-After estimates meaningless.
        self._avg_seconds: Dict[str, float] = {}
        self._scheduler: Optional[threading.Thread] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._recover()

    # -- spool persistence and recovery -------------------------------

    def _batch_path(self, batch_id: str) -> str:
        return os.path.join(self.batch_dir, batch_id + ".json")

    def _done_path(self, batch_id: str) -> str:
        return os.path.join(self.done_dir, batch_id + ".json")

    def _recover(self) -> None:
        """Reload the spool: done batches serve results, queued batches
        re-enter the queue (restart semantics; see module docstring)."""
        spooled = sorted(
            name[:-len(".json")]
            for name in os.listdir(self.batch_dir)
            if name.endswith(".json") and _BATCH_ID.match(name[:-5])
        )
        for batch_id in spooled:
            number = int(batch_id[1:])
            self._next_batch = max(self._next_batch, number + 1)
            try:
                with open(self._batch_path(batch_id),
                          encoding="utf-8") as handle:
                    record = json.load(handle)
                specs = [JobSpec.from_payload(entry)
                         for entry in record["jobs"]]
            except (OSError, ValueError, KeyError, ReproError):
                # A torn spool record can only be a batch whose submit
                # never completed — it was never acknowledged, so
                # dropping it loses nothing.
                continue
            batch = _Batch(batch_id, record.get("client", "anonymous"),
                           specs)
            done_path = self._done_path(batch_id)
            if os.path.exists(done_path):
                try:
                    with open(done_path, encoding="utf-8") as handle:
                        done = json.load(handle)
                    batch.stream = list(done["results"])
                    batch.state = STATE_DONE
                except (OSError, ValueError, KeyError):
                    batch.stream = []
            if batch.state != STATE_DONE:
                batch.state = STATE_QUEUED
                self._queue.append(batch_id)
                self._pending_jobs += batch.total
            self._batches[batch_id] = batch

    # -- submission (back-pressure lives here) ------------------------

    #: Duration assumed for a job kind never yet observed.
    DEFAULT_AVG_SECONDS = 0.5

    def avg_seconds(self, kind: str) -> float:
        """Current duration estimate (EWMA) for one job kind."""
        return self._avg_seconds.get(kind, self.DEFAULT_AVG_SECONDS)

    def _kind_backlog(self) -> Dict[str, int]:
        """Unfinished jobs per kind across all live batches.
        Caller must hold ``self._lock``."""
        backlog: Dict[str, int] = {}
        for batch in self._batches.values():
            if batch.state == STATE_DONE:
                continue
            finished = {entry["index"] for entry in batch.stream}
            for index, spec in enumerate(batch.specs):
                if index not in finished:
                    backlog[spec.kind] = backlog.get(spec.kind, 0) + 1
        return backlog

    def retry_after(self, extra: Sequence[JobSpec] = ()) -> float:
        """Seconds a refused client should wait before resubmitting:
        the backlog costed per job *kind* with the observed per-kind
        EWMA durations, divided across the workers, clamped to the
        documented 1-60 s back-pressure band.  Caller must hold
        ``self._lock``."""
        backlog = self._kind_backlog()
        for spec in extra:
            backlog[spec.kind] = backlog.get(spec.kind, 0) + 1
        workers = max(1, getattr(self.executor, "jobs", 1))
        seconds = sum(count * self.avg_seconds(kind)
                      for kind, count in backlog.items())
        return max(1.0, min(60.0, seconds / workers))

    def submit(self, specs: Sequence[JobSpec],
               client: str = "anonymous") -> Dict[str, object]:
        """Accept (and durably spool) a batch, or refuse with 429/503
        semantics (:class:`QueueFullError` / :class:`QuotaExceededError`
        / :class:`DaemonError`)."""
        specs = list(specs)
        if not specs:
            raise ServeError("refusing an empty batch")
        with self._lock:
            if self._draining or self._stopping:
                raise DaemonError("daemon is draining; not accepting "
                                  "new batches")
            if self._pending_jobs + len(specs) > self.max_queue:
                raise QueueFullError(
                    f"submission queue is full "
                    f"({self._pending_jobs} pending + {len(specs)} "
                    f"submitted > {self.max_queue} max)",
                    retry_after=self.retry_after(specs))
            if self.max_client_jobs is not None:
                held = sum(
                    batch.total - batch.completed
                    for batch in self._batches.values()
                    if batch.client == client
                    and batch.state != STATE_DONE)
                if held + len(specs) > self.max_client_jobs:
                    raise QuotaExceededError(
                        f"client {client!r} holds {held} pending "
                        f"job(s); quota is {self.max_client_jobs}",
                        client=client,
                        retry_after=self.retry_after(specs))
            batch_id = f"b{self._next_batch:06d}"
            self._next_batch += 1
            batch = _Batch(batch_id, client, specs)
            # Spool before acknowledging: an accepted batch survives
            # any crash from here on.
            _atomic_write_json(self._batch_path(batch_id), {
                "version": DAEMON_VERSION,
                "batch": batch_id,
                "client": client,
                "jobs": [spec.to_payload() for spec in specs],
            })
            self._batches[batch_id] = batch
            self._queue.append(batch_id)
            self._pending_jobs += len(specs)
            position = len(self._queue)
        self._wake.set()
        return {
            "batch": batch_id,
            "total": len(specs),
            "digests": [spec.digest() for spec in specs],
            "queue_position": position,
        }

    # -- queries -------------------------------------------------------

    def poll(self, batch_id: str, since: int = 0) -> Dict[str, object]:
        with self._lock:
            batch = self._batches.get(batch_id)
            if batch is None:
                raise DaemonError(f"unknown batch {batch_id!r}")
            stream = list(batch.stream[since:])
            return {
                "batch": batch.batch_id,
                "client": batch.client,
                "state": batch.state,
                "total": batch.total,
                "completed": batch.completed,
                "since": since,
                "next": batch.completed,
                "results": stream,
            }

    def peek(self, digest: str) -> Optional[Dict[str, object]]:
        return self.cache.peek(digest)

    def status(self) -> Dict[str, object]:
        quarantine = getattr(self.executor, "quarantined", None)
        quarantined = len(quarantine()) if callable(quarantine) else 0
        telemetry = getattr(self.executor, "telemetry", None)
        warm_pool = telemetry() if callable(telemetry) else None
        with self._lock:
            clients: Dict[str, int] = {}
            for batch in self._batches.values():
                if batch.state != STATE_DONE:
                    clients[batch.client] = (
                        clients.get(batch.client, 0)
                        + batch.total - batch.completed)
            return {
                "version": DAEMON_VERSION,
                "queue_depth": self._pending_jobs,
                "max_queue": self.max_queue,
                "max_client_jobs": self.max_client_jobs,
                "clients": clients,
                "batches": {batch.batch_id: batch.state
                            for batch in self._batches.values()},
                "draining": self._draining,
                "drained": self._drained.is_set(),
                "queue_by_kind": self._kind_backlog(),
                "avg_seconds": {kind: round(value, 6) for kind, value
                                in sorted(self._avg_seconds.items())},
                "executor": {
                    "jobs": getattr(self.executor, "jobs", 1),
                    "degraded": getattr(self.executor, "degraded",
                                        False),
                    "quarantined": quarantined,
                    "warm_pool": warm_pool,
                },
                "cache": self.cache.stats.as_dict(),
            }

    # -- the scheduler -------------------------------------------------

    def _run_batch(self, batch: _Batch) -> None:
        def on_result(outcome: JobOutcome) -> None:
            with self._lock:
                entry = _outcome_entry(outcome, batch.completed)
                batch.stream.append(entry)
                self._pending_jobs = max(0, self._pending_jobs - 1)
                if not outcome.cached and outcome.seconds > 0:
                    kind = outcome.spec.kind
                    previous = self._avg_seconds.get(kind)
                    self._avg_seconds[kind] = outcome.seconds \
                        if previous is None \
                        else 0.8 * previous + 0.2 * outcome.seconds

        try:
            run_jobs(batch.specs, executor=self.executor,
                     cache=self.cache, on_result=on_result)
        except ReproError as error:
            # Executor-level refusal (e.g. SpawnError with fallback
            # disabled): surface it on every unfinished job rather
            # than wedging the batch.
            with self._lock:
                finished = {entry["index"] for entry in batch.stream}
                for index, spec in enumerate(batch.specs):
                    if index in finished:
                        continue
                    batch.stream.append({
                        "order": batch.completed, "index": index,
                        "job_id": spec.job_id,
                        "digest": spec.digest(),
                        "status": "error", "cached": False,
                        "attempts": 0, "seconds": 0.0,
                        "error": f"executor failed: {error}",
                        "payload": None,
                    })
                    self._pending_jobs = max(0, self._pending_jobs - 1)
        with self._lock:
            batch.state = STATE_DONE
            stream = list(batch.stream)
        _atomic_write_json(self._done_path(batch.batch_id), {
            "version": DAEMON_VERSION,
            "batch": batch.batch_id,
            "results": stream,
        })

    def _scheduler_loop(self) -> None:
        while True:
            with self._lock:
                batch_id = self._queue.popleft() if self._queue else None
                if batch_id is not None:
                    batch = self._batches[batch_id]
                    batch.state = STATE_RUNNING
                draining = self._draining
                stopping = self._stopping
            if batch_id is not None:
                self.started_batches += 1
                self._run_batch(self._batches[batch_id])
                continue
            if stopping or draining:
                break
            self._wake.wait(0.1)
            self._wake.clear()
        self._drained.set()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the scheduler and the HTTP server (both threads)."""
        if self._scheduler is not None:
            raise DaemonError("daemon already started")
        self._scheduler = threading.Thread(target=self._scheduler_loop,
                                           name="serve-scheduler",
                                           daemon=True)
        self._scheduler.start()
        self._server = ThreadingHTTPServer((self.host, self.port),
                                           _Handler)
        self._server.daemon_threads = True
        self._server.daemon_ref = self
        self.port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http", daemon=True)
        self._server_thread.start()

    def drain(self, wait: bool = True,
              timeout: Optional[float] = None) -> None:
        """Refuse new work; finish the queue; then the scheduler exits.

        Queued-but-unstarted batches are already on disk, so a drain
        that is itself interrupted loses nothing either.
        """
        with self._lock:
            self._draining = True
        self._wake.set()
        if wait:
            self._drained.wait(timeout)

    def stop(self) -> None:
        """Stop serving (after at most the in-flight batch finishes)."""
        with self._lock:
            self._stopping = True
        self._wake.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._scheduler is not None:
            self._scheduler.join(timeout=30.0)
        close = getattr(self.executor, "close", None)
        if callable(close):
            close()  # retire warm worker incarnations


# -- HTTP plumbing -----------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve-daemon/1"

    @property
    def daemon(self) -> ServeDaemon:
        return self.server.daemon_ref

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # the daemon is quiet; chaos/event logs carry the story

    def _maybe_drop(self) -> bool:
        """Chaos hook: slam the connection shut before responding."""
        chaos = self.daemon.chaos
        path = self.path.split("?", 1)[0]
        if chaos is not None and chaos.should_drop(self.command, path):
            self.close_connection = True
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:  # pragma: no cover - already closed
                pass
            return True
        return False

    def _reply(self, code: int, payload: Dict[str, object],
               headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            raise ServeError("request body is empty")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(f"request body is not JSON: {error}") \
                from error
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self._maybe_drop():
            return
        path = self.path.split("?", 1)[0]
        try:
            if path == "/v1/batches":
                body = self._read_json()
                jobs = body.get("jobs")
                if not isinstance(jobs, list) or not jobs:
                    raise ServeError("'jobs' must be a non-empty list")
                specs = [JobSpec.from_payload(entry) for entry in jobs]
                accepted = self.daemon.submit(
                    specs, client=str(body.get("client", "anonymous")))
                self._reply(202, accepted)
            elif path == "/v1/drain":
                self.daemon.drain(wait=False)
                self._reply(202, {"draining": True})
            else:
                self._reply(404, {"error": f"no such endpoint {path}"})
        except QueueFullError as error:
            self._reply(429, {"error": str(error),
                              "retry_after": error.retry_after},
                        {"Retry-After":
                         str(int(round(error.retry_after)) or 1)})
        except DaemonError as error:
            self._reply(503, {"error": str(error)})
        except ReproError as error:
            self._reply(400, {"error": str(error)})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self._maybe_drop():
            return
        path, _, query = self.path.partition("?")
        try:
            if path == "/v1/status":
                self._reply(200, self.daemon.status())
                return
            match = re.match(r"^/v1/batches/([^/]+)$", path)
            if match:
                since = 0
                for part in query.split("&"):
                    if part.startswith("since="):
                        try:
                            since = max(0, int(part[len("since="):]))
                        except ValueError as error:
                            raise ServeError(
                                f"bad since value: {error}") from error
                try:
                    self._reply(200, self.daemon.poll(match.group(1),
                                                      since=since))
                except DaemonError as error:
                    self._reply(404, {"error": str(error)})
                return
            match = re.match(r"^/v1/results/([0-9a-f]{64})$", path)
            if match:
                digest = match.group(1)
                payload = self.daemon.peek(digest)
                if payload is None:
                    self._reply(404, {"error": "no cached result for "
                                      + digest, "digest": digest})
                else:
                    self._reply(200, {"digest": digest,
                                      "payload": payload})
                return
            self._reply(404, {"error": f"no such endpoint {path}"})
        except ReproError as error:
            self._reply(400, {"error": str(error)})


# -- client ------------------------------------------------------------

class DaemonClient:
    """Small HTTP client for the daemon, with bounded retries.

    Connection drops (including chaos-injected ones) and connection
    refusals are retried up to ``retries`` times with a fixed backoff;
    HTTP error statuses are mapped back onto the error taxonomy
    (429 -> :class:`QueueFullError` carrying the server's Retry-After).
    """

    def __init__(self, host: str, port: int, client: str = "anonymous",
                 retries: int = 3, backoff: float = 0.1,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.client = client
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None):
        import http.client

        payload = None if body is None \
            else json.dumps(body).encode("utf-8")
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            try:
                headers = {"Content-Type": "application/json"} \
                    if payload is not None else {}
                connection.request(method, path, body=payload,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
                return response.status, dict(response.getheaders()), \
                    decoded
            except (OSError, http.client.HTTPException,
                    json.JSONDecodeError) as error:
                last_error = error
                time.sleep(self.backoff * (attempt + 1))
            finally:
                connection.close()
        raise DaemonError(
            f"daemon at {self.host}:{self.port} unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}")

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 expect: int = 200) -> Dict[str, object]:
        status, headers, payload = self._request(method, path, body)
        if status == expect:
            return payload
        message = payload.get("error", f"HTTP {status}") \
            if isinstance(payload, dict) else f"HTTP {status}"
        if status == 429:
            # Retry-After may legally be an HTTP-date (or garbage from a
            # proxy); parsing must never crash the retry loop.  Fall
            # back to the default and clamp to the server's documented
            # 1-60 s back-pressure band.
            try:
                retry_after = float(headers.get("Retry-After", 1.0))
            except (TypeError, ValueError):
                retry_after = 1.0
            retry_after = min(60.0, max(1.0, retry_after))
            raise QueueFullError(str(message), retry_after=retry_after)
        raise DaemonError(f"{method} {path} -> {status}: {message}")

    def submit(self, specs: Sequence[JobSpec]) -> Dict[str, object]:
        jobs = [spec.to_payload() if isinstance(spec, JobSpec) else spec
                for spec in specs]
        return self._checked("POST", "/v1/batches",
                             {"client": self.client, "jobs": jobs},
                             expect=202)

    def poll(self, batch_id: str, since: int = 0) -> Dict[str, object]:
        return self._checked("GET",
                             f"/v1/batches/{batch_id}?since={since}")

    def wait(self, batch_id: str, timeout: float = 120.0,
             interval: float = 0.05) -> Dict[str, object]:
        """Poll until the batch is done; returns the full final poll."""
        deadline = time.monotonic() + timeout
        while True:
            state = self.poll(batch_id)
            if state["state"] == STATE_DONE:
                return state
            if time.monotonic() >= deadline:
                raise DaemonError(
                    f"batch {batch_id} not done after {timeout:g}s "
                    f"({state['completed']}/{state['total']} jobs)")
            time.sleep(interval)

    def peek(self, digest: str) -> Optional[Dict[str, object]]:
        status, _, payload = self._request("GET",
                                           f"/v1/results/{digest}")
        if status == 404:
            return None
        if status != 200:
            raise DaemonError(f"peek {digest} -> HTTP {status}")
        return payload.get("payload")

    def status(self) -> Dict[str, object]:
        return self._checked("GET", "/v1/status")

    def drain(self) -> Dict[str, object]:
        return self._checked("POST", "/v1/drain", expect=202)


# -- CLI ---------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.daemon",
        description="Run the fault-tolerant job service.",
    )
    parser.add_argument("--spool", required=True,
                        help="durable state directory (queue + results)")
    parser.add_argument("--cache", default=None,
                        help="result-cache root (default: <spool>/cache)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="supervised worker processes")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries after a worker crash or hang")
    parser.add_argument("--fresh-workers", action="store_true",
                        help="fork a fresh worker per job instead of "
                             "the warm persistent pool")
    parser.add_argument("--recycle-after", type=int, default=64,
                        help="recycle a warm worker after this many "
                             "jobs (0 disables)")
    parser.add_argument("--max-worker-rss-mb", type=float, default=None,
                        help="recycle a warm worker whose peak RSS "
                             "exceeds this many MB")
    parser.add_argument("--max-queue", type=int, default=256,
                        help="bounded submission queue (jobs)")
    parser.add_argument("--max-client-jobs", type=int, default=None,
                        help="per-client pending-job quota")
    parser.add_argument("--ready-file", default=None,
                        help="write {port, pid} here once listening")
    arguments = parser.parse_args(argv)

    try:
        daemon = ServeDaemon(
            spool=arguments.spool, cache_root=arguments.cache,
            executor=SupervisedPool(
                jobs=arguments.jobs,
                timeout=arguments.timeout,
                retries=arguments.retries,
                warm=not arguments.fresh_workers,
                recycle_after=arguments.recycle_after or None,
                max_worker_rss_mb=arguments.max_worker_rss_mb),
            max_queue=arguments.max_queue,
            max_client_jobs=arguments.max_client_jobs,
            host=arguments.host, port=arguments.port)
        daemon.start()
    except (ReproError, OSError) as error:
        print(f"repro.serve.daemon: {error}", file=sys.stderr)
        return 1

    if arguments.ready_file:
        _atomic_write_json(arguments.ready_file, {
            "port": daemon.port, "pid": os.getpid(),
            "spool": arguments.spool,
        })

    def request_drain(signum, frame) -> None:
        daemon.drain(wait=False)

    signal.signal(signal.SIGTERM, request_drain)
    signal.signal(signal.SIGINT, request_drain)

    print(f"repro.serve.daemon: listening on "
          f"{daemon.host}:{daemon.port}, spool {arguments.spool} "
          f"({len(daemon._batches)} batch(es) recovered)")
    # Serve until drained: /v1/drain or SIGTERM finishes the queue and
    # lets the process exit cleanly.
    daemon._drained.wait()
    daemon.stop()
    print("repro.serve.daemon: drained; bye")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
