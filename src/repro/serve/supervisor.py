"""``SupervisedPool``: the process pool hardened into a fault-tolerant
execution fabric — with an optional **warm persistent worker** mode.

:class:`~repro.serve.executors.PoolExecutor` already gives per-job
isolation, timeouts and bounded crash retries.  This module adds the
machinery a *long-running service* needs to survive infrastructure
failure without corrupting results:

* **worker heartbeats + hung-worker watchdog** — every worker runs a
  daemon thread that beats over its result pipe; a worker silent for
  longer than ``watchdog`` seconds is declared hung and reaped (SIGTERM
  escalating to SIGKILL after ``term_grace``).  Heartbeat silence is an
  *infrastructure* fault — the worker may be deadlocked or stopped — so
  hung jobs are retried; only the deterministic per-job ``timeout``
  surfaces without retry.
* **retries with exponential backoff + deterministic seeded jitter** —
  a crashed or hung job is rescheduled after
  ``backoff_base * 2**(failures-1)`` seconds (capped at
  ``backoff_cap``), scaled by a jitter drawn from
  :class:`~repro.workloads.XorShift32` seeded by the job digest and the
  failure count.  Same batch, same crashes => same schedule, so retry
  timing can never leak into results.
* **poison-job quarantine** — a spec whose workers crash
  ``poison_after`` times is a *crash loop*: it gets a structured
  ``poisoned`` outcome instead of eating workers forever, and its
  digest is quarantined on the pool, so every later submission of the
  same digest is refused instantly (attempts=0) until the pool is
  replaced.
* **graceful degradation to serial execution** — if the OS refuses to
  spawn worker processes (fork bombs, rlimits, cgroup pressure), the
  pool flips to running jobs in-process, SerialExecutor-style, rather
  than failing the batch.  Probes that would kill or wedge the calling
  process surface as structured failures instead.  Set
  ``fallback_serial=False`` to get a
  :class:`~repro.errors.SpawnError` instead.
* **chaos hooks** — an optional :class:`~repro.serve.chaos.ChaosMonkey`
  may order a worker killed or hung per (digest, attempt), which is how
  the differential harness proves all of the above is invisible in the
  outcome tables.

**Warm mode** (``warm=True``) replaces the one-fresh-process-per-job
strategy with a fabric of **long-lived worker incarnations** that loop
over a pipe-fed job queue.  The expensive per-process state a worker
accumulates — the memoised lockstep checker
(:data:`repro.serve.worker._CHECKER_MEMO`), the fastpath/trace compile
caches, the golden checkpoint streams — survives from job to job
instead of dying with the process, which removes the dominant
spawn+recompile tax on compile-heavy sweeps:

* **affinity routing** — jobs carry an
  :meth:`~repro.serve.jobspec.JobSpec.affinity_key` (workload instance
  + machine-config digest: exactly what the in-process memos are keyed
  by) and the dispatcher prefers an idle worker that has already served
  that key, so repeat keys land on hot caches;
* **bounded incarnations** — a worker is recycled after
  ``recycle_after`` jobs or once its peak RSS crosses
  ``max_worker_rss_mb`` (reported by the worker with every result), so
  warm state cannot grow into a leak;
* **supervision unchanged** — heartbeats and the watchdog now span
  every job of an incarnation, crashes cost only the incarnation (the
  job retries on a fresh one), poison quarantine still counts crash
  loops per digest, per-job timeouts still reap (sacrificing the
  incarnation), and chaos ``kill``/``hang`` directives fault warm
  incarnations mid-stream exactly like fresh workers.

Both modes dispatch **event-driven**: the scheduler blocks in
``multiprocessing.connection.wait`` over the worker pipes with a
timeout derived from the *earliest actual deadline* (retry backoff
expiry, per-job timeout, watchdog), not a fixed polling tick, so a job
completion wakes the dispatcher immediately.

The executor contract is unchanged: ``run(specs, on_result=None)``
returns outcomes **in input order**, results are byte-identical to
:class:`~repro.serve.executors.SerialExecutor`, and no failure mode
may hang the pool or drop a result.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError, ServeError, SpawnError
from repro.serve.executors import (
    DEFAULT_TERM_GRACE,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_TIMEOUT,
    JobOutcome,
    OnResult,
    reap_process,
)
from repro.serve.jobspec import KIND_PROBE, JobSpec
from repro.serve.worker import execute_payload, execute_spec, worker_stats
from repro.workloads import XorShift32

#: Message tag workers interleave with their result messages.
HEARTBEAT = "heartbeat"

#: Chaos directives a worker understands (see repro.serve.chaos).
CHAOS_KILL = "kill"
CHAOS_HANG = "hang"

#: Upper bound on any single scheduler wait.  Waits normally end at the
#: earliest real deadline or on a pipe event; this cap only insures
#: against a lost-wakeup bug ever wedging the pool.
_POLL_CAP = 1.0


def _supervised_child_entry(payload, conn, heartbeat: float,
                            directive: Optional[str]) -> None:
    """Fresh-mode worker body: heartbeat from a side thread, report one
    result, exit.

    A chaos ``kill`` directive dies instantly without reporting (a
    machine-level worker loss); ``hang`` wedges *without* starting the
    heartbeat thread, so the parent watchdog — not the per-job timeout
    — must notice.
    """
    if directive == CHAOS_KILL:
        os._exit(137)
    if directive == CHAOS_HANG:
        while True:  # pragma: no cover - reaped by the parent watchdog
            time.sleep(3600)

    send_lock = threading.Lock()
    stop = threading.Event()
    if heartbeat > 0:
        def beat() -> None:
            sequence = 0
            while not stop.wait(heartbeat):
                sequence += 1
                try:
                    with send_lock:
                        if stop.is_set():
                            return
                        conn.send((HEARTBEAT, sequence, None))
                except OSError:  # pragma: no cover - parent went away
                    return

        threading.Thread(target=beat, daemon=True).start()
    try:
        try:
            result, meta = execute_payload(payload)
            message = (STATUS_OK, result, meta)
        except ReproError as error:
            message = (STATUS_ERROR, str(error), None)
        except Exception as error:  # noqa: BLE001 - report, don't die
            message = (STATUS_ERROR, f"{type(error).__name__}: {error}",
                       None)
        with send_lock:
            stop.set()
            conn.send(message)
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:  # pragma: no cover - pipe already gone
            pass


def _warm_child_entry(conn, heartbeat: float) -> None:
    """Warm-mode worker body: loop over pipe-fed jobs until told to
    stop, heartbeating for the life of the incarnation.

    Parent -> worker messages: ``("job", payload, directive)`` runs one
    job; ``("stop",)`` (or EOF) ends the incarnation cleanly.  Chaos
    directives fault *this* incarnation mid-stream: ``kill`` dies
    without reporting, ``hang`` silences the heartbeat thread first and
    then wedges — modelling a stop-the-world process hang the parent
    watchdog (not the per-job timeout) must notice.

    Every result message carries :func:`~repro.serve.worker.
    worker_stats` (peak RSS + checker-memo counters), which the parent
    uses for recycle decisions and warm-pool telemetry.
    """
    send_lock = threading.Lock()
    stop = threading.Event()
    if heartbeat > 0:
        def beat() -> None:
            sequence = 0
            while not stop.wait(heartbeat):
                sequence += 1
                try:
                    with send_lock:
                        if stop.is_set():
                            return
                        conn.send((HEARTBEAT, sequence, None))
                except OSError:  # pragma: no cover - parent went away
                    return

        threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(request, tuple) or not request \
                    or request[0] != "job":
                break  # ("stop",) — clean recycle
            _, payload, directive = request
            if directive == CHAOS_KILL:
                os._exit(137)
            if directive == CHAOS_HANG:
                stop.set()
                while True:  # pragma: no cover - reaped by the parent
                    time.sleep(3600)
            try:
                result, meta = execute_payload(payload)
                message = (STATUS_OK, result, meta, worker_stats())
            except ReproError as error:
                message = (STATUS_ERROR, str(error), None, worker_stats())
            except Exception as error:  # noqa: BLE001 - report, don't die
                message = (STATUS_ERROR,
                           f"{type(error).__name__}: {error}", None,
                           worker_stats())
            with send_lock:
                conn.send(message)
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:  # pragma: no cover - pipe already gone
            pass


@dataclass
class _Worker:
    """Fresh-mode bookkeeping: one worker, one job, then gone."""

    index: int
    process: multiprocessing.process.BaseProcess
    started: float
    last_beat: float


@dataclass
class _Assignment:
    """The job a warm incarnation is currently executing."""

    index: int
    key: str
    started: float
    affinity_hit: bool


@dataclass
class _WarmWorker:
    """One warm worker incarnation and the warm state it has built."""

    generation: int
    process: multiprocessing.process.BaseProcess
    conn: object
    last_beat: float
    jobs_done: int = 0
    #: Affinity keys this incarnation has served (== which in-process
    #: memos are hot).
    keys: Set[str] = field(default_factory=set)
    current: Optional[_Assignment] = None
    #: Last worker_stats() report (RSS, checker-memo counters).
    last_stats: Optional[Dict[str, object]] = None


class SupervisedPool:
    """Fault-tolerant process-parallel executor (see module docstring).

    Parameters beyond :class:`~repro.serve.executors.PoolExecutor`:

    ``heartbeat``
        Interval (s) between worker heartbeats; 0 disables them (and
        the watchdog with them).
    ``watchdog``
        Heartbeat silence (s) after which a worker counts as hung.
        Must comfortably exceed ``heartbeat``.
    ``retries``
        Re-runs granted after a crash *or* a watchdog-declared hang.
    ``poison_after``
        Worker crashes (per job digest) that trigger quarantine.
    ``backoff_base`` / ``backoff_cap`` / ``backoff_seed``
        Exponential-backoff schedule for retries, jittered
        deterministically from the job digest.
    ``fallback_serial``
        Degrade to in-process execution when spawning fails (else
        raise :class:`~repro.errors.SpawnError`).
    ``chaos``
        Optional :class:`~repro.serve.chaos.ChaosMonkey` consulted per
        (digest, attempt) for an injected worker fault.
    ``warm``
        Keep worker processes alive across jobs (and across ``run()``
        calls) and route jobs onto workers whose in-process caches
        already cover them.  Results remain byte-identical to serial
        execution — warm reuse is a pure perf knob.
    ``recycle_after``
        Warm mode: retire an incarnation after this many jobs.
    ``max_worker_rss_mb``
        Warm mode: retire an incarnation whose reported peak RSS
        exceeds this many MB.
    """

    def __init__(self, jobs: int = 2, timeout: Optional[float] = None,
                 retries: int = 2, start_method: Optional[str] = None,
                 term_grace: float = DEFAULT_TERM_GRACE,
                 heartbeat: float = 0.25, watchdog: Optional[float] = 5.0,
                 poison_after: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 backoff_seed: int = 0x5EED,
                 fallback_serial: bool = True,
                 chaos=None,
                 warm: bool = False,
                 recycle_after: Optional[int] = None,
                 max_worker_rss_mb: Optional[float] = None):
        if jobs < 1:
            raise ServeError("SupervisedPool needs jobs >= 1")
        if timeout is not None and timeout <= 0:
            raise ServeError("per-job timeout must be positive")
        if retries < 0:
            raise ServeError("retries must be >= 0")
        if term_grace <= 0:
            raise ServeError("term_grace must be positive")
        if heartbeat < 0:
            raise ServeError("heartbeat interval must be >= 0")
        if watchdog is not None and heartbeat > 0 \
                and watchdog <= heartbeat:
            raise ServeError("watchdog must exceed the heartbeat "
                             "interval, or every worker looks hung")
        if poison_after < 1:
            raise ServeError("poison_after must be >= 1")
        if backoff_base < 0 or backoff_cap < backoff_base:
            raise ServeError("need 0 <= backoff_base <= backoff_cap")
        if recycle_after is not None and recycle_after < 1:
            raise ServeError("recycle_after must be >= 1")
        if max_worker_rss_mb is not None and max_worker_rss_mb <= 0:
            raise ServeError("max_worker_rss_mb must be positive")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.term_grace = term_grace
        self.heartbeat = heartbeat
        self.watchdog = watchdog if heartbeat > 0 else None
        self.poison_after = poison_after
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_seed = backoff_seed
        self.fallback_serial = fallback_serial
        self.chaos = chaos
        self.warm = warm
        self.recycle_after = recycle_after
        self.max_worker_rss_mb = max_worker_rss_mb
        #: True once the pool has fallen back to in-process execution.
        self.degraded = False
        #: digest -> quarantine reason, persistent across run() calls.
        self._quarantined: Dict[str, str] = {}
        #: Warm incarnations, persistent across run() calls.
        self._warm_workers: Dict[object, _WarmWorker] = {}
        self._generations = 0
        #: Warm-fabric telemetry (see :meth:`telemetry`).
        self.counters: Dict[str, int] = {
            "dispatched": 0,        # jobs sent to warm workers
            "spawns": 0,            # incarnations started
            "reused_jobs": 0,       # jobs run on a non-fresh incarnation
            "affinity_hits": 0,     # routed onto a worker hot for the key
            "affinity_misses": 0,
            "recycles_jobs": 0,     # retired at the recycle_after bound
            "recycles_rss": 0,      # retired at the RSS ceiling
            "workers_lost": 0,      # incarnations that died uncommanded
            "idle_culled": 0,       # silent idle incarnations reaped
        }
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)

    # -- deterministic backoff ----------------------------------------

    def backoff_delay(self, digest: str, failures: int) -> float:
        """Sleep before retry number ``failures`` of job ``digest``.

        ``base * 2**(failures-1)`` capped, scaled into [0.5x, 1.0x] by
        a jitter drawn deterministically from (digest, failures, pool
        seed) — spreads retry storms without making the schedule
        depend on wall clock or scheduling order.
        """
        if self.backoff_base == 0:
            return 0.0
        window = min(self.backoff_cap,
                     self.backoff_base * (2 ** max(0, failures - 1)))
        seed = (int(digest[:8], 16) ^ self.backoff_seed ^ failures) or 1
        jitter = XorShift32(seed).next() / 2 ** 32
        return window * (0.5 + 0.5 * jitter)

    # -- quarantine ----------------------------------------------------

    def quarantined(self) -> Dict[str, str]:
        """digest -> reason for every quarantined job spec."""
        return dict(self._quarantined)

    def _quarantine(self, digest: str, reason: str) -> None:
        self._quarantined[digest] = reason
        if self.chaos is not None:
            self.chaos.log.record("quarantine", digest=digest,
                                  reason=reason)

    # -- warm-fabric lifecycle and telemetry ---------------------------

    def telemetry(self) -> Dict[str, object]:
        """Warm-fabric health: reuse and affinity rates, recycles,
        per-incarnation job counts, RSS and live memo sizes."""
        dispatched = self.counters["dispatched"]
        routed = (self.counters["affinity_hits"]
                  + self.counters["affinity_misses"])
        workers = []
        for worker in self._warm_workers.values():
            stats = worker.last_stats or {}
            workers.append({
                "generation": worker.generation,
                "jobs_done": worker.jobs_done,
                "keys": len(worker.keys),
                "busy": worker.current is not None,
                "rss_kb": stats.get("rss_kb"),
                "checker_memo": stats.get("checker_memo"),
            })
        return {
            "warm": self.warm,
            "degraded": self.degraded,
            **self.counters,
            "recycles": (self.counters["recycles_jobs"]
                         + self.counters["recycles_rss"]),
            "worker_reuse_rate": (self.counters["reused_jobs"] / dispatched
                                  if dispatched else 0.0),
            "affinity_hit_rate": (self.counters["affinity_hits"] / routed
                                  if routed else 0.0),
            "live_workers": len(self._warm_workers),
            "workers": workers,
        }

    def _spawn_warm(self) -> _WarmWorker:
        """Start one warm incarnation; raises OSError on spawn failure."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_warm_child_entry,
            args=(child_conn, self.heartbeat),
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        self._generations += 1
        self.counters["spawns"] += 1
        now = time.monotonic()
        worker = _WarmWorker(self._generations, process, parent_conn, now)
        self._warm_workers[parent_conn] = worker
        return worker

    def _drop_warm(self, worker: _WarmWorker, stop: bool) -> None:
        """Remove one incarnation: politely (``stop``) or by reaping."""
        self._warm_workers.pop(worker.conn, None)
        if stop:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        reap_process(worker.process, self.term_grace)
        try:
            worker.conn.close()
        except OSError:
            pass

    def close(self) -> None:
        """Retire every warm incarnation (idle and busy alike).

        The pool remains usable — the next ``run()`` spawns fresh
        incarnations — so ``close()`` doubles as a manual full recycle.
        """
        for worker in list(self._warm_workers.values()):
            self._drop_warm(worker, stop=True)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- spawning and degraded execution ------------------------------

    def _spawn(self, payload, directive: Optional[str]):
        """Start one fresh-mode worker; returns (parent_conn, process)."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_supervised_child_entry,
            args=(payload, child_conn, self.heartbeat, directive),
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        return parent_conn, process

    def _run_inline(self, spec: JobSpec, index: int,
                    attempt: int, cause: str) -> JobOutcome:
        """Degraded mode: execute one job in-process, structurally."""
        if spec.kind == KIND_PROBE and spec.behavior in ("crash", "hang",
                                                         "stubborn"):
            return JobOutcome(
                spec=spec, index=index, status=STATUS_CRASHED,
                error=(f"probe({spec.behavior}) cannot run in degraded "
                       f"serial mode (process spawning failed: {cause})"),
                attempts=attempt, meta={"degraded": True})
        started = time.perf_counter()
        try:
            payload, meta = execute_spec(spec)
            meta = dict(meta or {})
            meta["degraded"] = True
            return JobOutcome(spec=spec, index=index, status=STATUS_OK,
                              payload=payload, meta=meta,
                              seconds=time.perf_counter() - started,
                              attempts=attempt)
        except ReproError as error:
            return JobOutcome(spec=spec, index=index, status=STATUS_ERROR,
                              error=str(error),
                              seconds=time.perf_counter() - started,
                              attempts=attempt, meta={"degraded": True})
        except Exception as error:  # noqa: BLE001 - structured outcome
            return JobOutcome(spec=spec, index=index, status=STATUS_ERROR,
                              error=f"{type(error).__name__}: {error}",
                              seconds=time.perf_counter() - started,
                              attempts=attempt, meta={"degraded": True})

    # -- shared scheduling helpers ------------------------------------

    @staticmethod
    def _wait_budget(now: float, deadlines: List[float]) -> float:
        """Seconds the scheduler may block: until the earliest real
        deadline, bounded by the lost-wakeup cap.  Pipe events always
        wake it earlier."""
        if not deadlines:
            return _POLL_CAP
        return min(_POLL_CAP, max(0.0, min(deadlines) - now))

    # -- the supervision loop (dispatch) ------------------------------

    def run(self, specs: Sequence[JobSpec],
            on_result: Optional[OnResult] = None) -> List[JobOutcome]:
        if self.warm:
            return self._run_warm(list(specs), on_result)
        return self._run_fresh(list(specs), on_result)

    # -- fresh mode: one process per job ------------------------------

    def _run_fresh(self, specs: List[JobSpec],
                   on_result: Optional[OnResult]) -> List[JobOutcome]:
        payloads = [spec.to_payload() for spec in specs]
        digests = [spec.digest() for spec in specs]
        results: Dict[int, JobOutcome] = {}
        ready: deque = deque(range(len(specs)))
        delayed: List[Tuple[float, int]] = []   # (ready_at, index)
        running: Dict[object, _Worker] = {}
        attempts = [0] * len(specs)
        failures = [0] * len(specs)             # crashes + hangs

        def finish(outcome: JobOutcome) -> None:
            results[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        def retry_or(index: int, make_outcome) -> None:
            """Common crash/hang disposition: quarantine, retry with
            backoff, or surface the structured outcome."""
            digest = digests[index]
            if failures[index] >= self.poison_after:
                reason = (f"crash-looped: {failures[index]} worker(s) "
                          f"lost over {attempts[index]} attempt(s)")
                self._quarantine(digest, reason)
                finish(JobOutcome(
                    spec=specs[index], index=index,
                    status=STATUS_POISONED,
                    error=f"job quarantined as poisoned ({reason})",
                    attempts=attempts[index]))
            elif attempts[index] <= self.retries:
                delay = self.backoff_delay(digest, failures[index])
                delayed.append((time.monotonic() + delay, index))
            else:
                finish(make_outcome())

        while len(results) < len(specs):
            now = time.monotonic()
            if delayed:
                due = [entry for entry in delayed if entry[0] <= now]
                if due:
                    delayed = [entry for entry in delayed
                               if entry[0] > now]
                    # Input order among simultaneously-due retries.
                    ready.extend(sorted(index for _, index in due))

            while ready and len(running) < self.jobs:
                index = ready.popleft()
                digest = digests[index]
                if digest in self._quarantined:
                    finish(JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_POISONED,
                        error=("job digest is quarantined: "
                               + self._quarantined[digest]),
                        attempts=attempts[index]))
                    continue
                attempts[index] += 1
                directive = None
                if self.chaos is not None:
                    directive = self.chaos.worker_directive(
                        digest, attempts[index])
                if self.degraded:
                    finish(self._run_inline(specs[index], index,
                                            attempts[index],
                                            "pool already degraded"))
                    continue
                try:
                    conn, process = self._spawn(payloads[index],
                                                directive)
                except OSError as error:
                    if not self.fallback_serial:
                        raise SpawnError(
                            f"cannot spawn a worker process: {error}"
                        ) from error
                    self.degraded = True
                    finish(self._run_inline(specs[index], index,
                                            attempts[index], str(error)))
                    continue
                started = time.monotonic()
                running[conn] = _Worker(index, process, started, started)

            # Event-driven wait: block until a worker heartbeats,
            # reports, or exits (EOF) — or until the earliest pending
            # deadline (retry backoff, per-job timeout, watchdog).
            deadlines: List[float] = []
            for worker in running.values():
                if self.timeout is not None:
                    deadlines.append(worker.started + self.timeout)
                if self.watchdog is not None:
                    deadlines.append(worker.last_beat + self.watchdog)
            if delayed:
                deadlines.append(min(at for at, _ in delayed))
            budget = self._wait_budget(time.monotonic(), deadlines)
            if not running:
                if ready:
                    continue  # degraded fast path: dispatch inline
                if budget > 0:
                    time.sleep(budget)
                continue
            for conn in connection_wait(list(running), timeout=budget):
                worker = running[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                if message is not None and message[0] == HEARTBEAT:
                    worker.last_beat = time.monotonic()
                    continue
                del running[conn]
                conn.close()
                reap_process(worker.process, self.term_grace)
                elapsed = time.monotonic() - worker.started
                index = worker.index
                if message is None:
                    failures[index] += 1
                    exit_code = worker.process.exitcode

                    def crashed(index=index, exit_code=exit_code,
                                elapsed=elapsed) -> JobOutcome:
                        return JobOutcome(
                            spec=specs[index], index=index,
                            status=STATUS_CRASHED,
                            error=(f"worker died without reporting "
                                   f"(exit code {exit_code}) after "
                                   f"{attempts[index]} attempt(s)"),
                            seconds=elapsed, attempts=attempts[index])

                    retry_or(index, crashed)
                    continue
                status, data, meta = message
                if status == STATUS_OK:
                    finish(JobOutcome(
                        spec=specs[index], index=index, status=STATUS_OK,
                        payload=data, meta=meta, seconds=elapsed,
                        attempts=attempts[index]))
                else:
                    finish(JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_ERROR, error=data, seconds=elapsed,
                        attempts=attempts[index]))

            now = time.monotonic()
            for conn, worker in list(running.items()):
                index = worker.index
                overdue = self.timeout is not None \
                    and now - worker.started >= self.timeout
                hung = self.watchdog is not None \
                    and now - worker.last_beat >= self.watchdog
                if not (overdue or hung):
                    continue
                del running[conn]
                conn.close()
                ended_by = reap_process(worker.process, self.term_grace)
                elapsed = now - worker.started
                if overdue:
                    # Deterministic per-job budget: no retry.
                    finish(JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_TIMEOUT,
                        error=(f"job exceeded the {self.timeout:g}s "
                               f"per-job timeout and was terminated "
                               f"(worker ended by {ended_by})"),
                        seconds=elapsed, attempts=attempts[index]))
                    continue
                # Heartbeat silence: infrastructure fault, retried.
                failures[index] += 1
                silence = now - worker.last_beat
                if self.chaos is not None:
                    self.chaos.log.record(
                        "watchdog-reap", digest=digests[index],
                        attempt=attempts[index], ended_by=ended_by)

                def hung_out(index=index, silence=silence,
                             ended_by=ended_by,
                             elapsed=elapsed) -> JobOutcome:
                    return JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_TIMEOUT,
                        error=(f"watchdog declared the worker hung "
                               f"(no heartbeat for {silence:.2f}s) on "
                               f"all {attempts[index]} attempt(s); "
                               f"last worker ended by {ended_by}"),
                        seconds=elapsed, attempts=attempts[index])

                retry_or(index, hung_out)

        return [results[index] for index in range(len(specs))]

    # -- warm mode: persistent workers with affinity routing ----------

    def _route(self, ready: deque, keys: List[str]
               ) -> Tuple[int, Optional[_WarmWorker], bool]:
        """Pick the next (job, worker) pairing.

        Affinity first: scan the ready queue (front to back) for any
        job whose key an *idle* incarnation has already served, and
        pair them.  Otherwise take the head job with no worker chosen
        yet — the caller spawns a fresh incarnation if capacity allows,
        else reuses the coldest idle one.  Routing order cannot affect
        results (outcomes are assembled by input index).
        """
        idle = [worker for worker in self._warm_workers.values()
                if worker.current is None]
        if idle:
            hot_keys = set()
            for worker in idle:
                hot_keys.update(worker.keys)
            for position, index in enumerate(ready):
                if keys[index] in hot_keys:
                    del ready[position]
                    worker = min(
                        (w for w in idle if keys[index] in w.keys),
                        key=lambda w: (w.jobs_done, w.generation))
                    return index, worker, True
        return ready.popleft(), None, False

    def _run_warm(self, specs: List[JobSpec],
                  on_result: Optional[OnResult]) -> List[JobOutcome]:
        payloads = [spec.to_payload() for spec in specs]
        digests = [spec.digest() for spec in specs]
        keys = [spec.affinity_key() for spec in specs]
        results: Dict[int, JobOutcome] = {}
        ready: deque = deque(range(len(specs)))
        delayed: List[Tuple[float, int]] = []   # (ready_at, index)
        attempts = [0] * len(specs)
        failures = [0] * len(specs)             # crashes + hangs

        # Incarnations idle since the previous run() have stale beat
        # stamps (nobody was reading their pipe); re-arm the watchdog
        # before their buffered heartbeats drain.
        now = time.monotonic()
        for worker in self._warm_workers.values():
            worker.last_beat = now

        def finish(outcome: JobOutcome) -> None:
            results[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        def retry_or(index: int, make_outcome) -> None:
            digest = digests[index]
            if failures[index] >= self.poison_after:
                reason = (f"crash-looped: {failures[index]} worker(s) "
                          f"lost over {attempts[index]} attempt(s)")
                self._quarantine(digest, reason)
                finish(JobOutcome(
                    spec=specs[index], index=index,
                    status=STATUS_POISONED,
                    error=f"job quarantined as poisoned ({reason})",
                    attempts=attempts[index]))
            elif attempts[index] <= self.retries:
                delay = self.backoff_delay(digest, failures[index])
                delayed.append((time.monotonic() + delay, index))
            else:
                finish(make_outcome())

        def lose_incarnation(worker: _WarmWorker) -> None:
            """An incarnation died or wedged uncommanded."""
            self._drop_warm(worker, stop=False)
            self.counters["workers_lost"] += 1

        while len(results) < len(specs):
            now = time.monotonic()
            if delayed:
                due = [entry for entry in delayed if entry[0] <= now]
                if due:
                    delayed = [entry for entry in delayed
                               if entry[0] > now]
                    ready.extend(sorted(index for _, index in due))

            # -- dispatch: affinity routing onto idle/new incarnations
            while ready:
                if self.degraded:
                    index = ready.popleft()
                    digest = digests[index]
                    if digest in self._quarantined:
                        finish(JobOutcome(
                            spec=specs[index], index=index,
                            status=STATUS_POISONED,
                            error=("job digest is quarantined: "
                                   + self._quarantined[digest]),
                            attempts=attempts[index]))
                        continue
                    attempts[index] += 1
                    finish(self._run_inline(specs[index], index,
                                            attempts[index],
                                            "pool already degraded"))
                    continue
                have_idle = any(worker.current is None for worker
                                in self._warm_workers.values())
                if not have_idle \
                        and len(self._warm_workers) >= self.jobs:
                    break  # every incarnation is busy
                index, worker, affinity_hit = self._route(ready, keys)
                digest = digests[index]
                if digest in self._quarantined:
                    finish(JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_POISONED,
                        error=("job digest is quarantined: "
                               + self._quarantined[digest]),
                        attempts=attempts[index]))
                    continue
                if worker is None and \
                        len(self._warm_workers) < self.jobs:
                    try:
                        worker = self._spawn_warm()
                    except OSError as error:
                        idle = [w for w in self._warm_workers.values()
                                if w.current is None]
                        if idle:
                            # Spawning is refused but live incarnations
                            # remain: keep serving on what we have.
                            worker = min(idle, key=lambda w:
                                         (len(w.keys), w.generation))
                        elif not self.fallback_serial:
                            raise SpawnError(
                                f"cannot spawn a worker process: "
                                f"{error}") from error
                        else:
                            self.degraded = True
                            attempts[index] += 1
                            finish(self._run_inline(
                                specs[index], index, attempts[index],
                                str(error)))
                            continue
                if worker is None:
                    idle = [w for w in self._warm_workers.values()
                            if w.current is None]
                    worker = min(idle, key=lambda w:
                                 (len(w.keys), w.generation))
                attempt = attempts[index] + 1
                directive = None
                if self.chaos is not None:
                    directive = self.chaos.worker_directive(digest,
                                                            attempt)
                try:
                    worker.conn.send(("job", payloads[index],
                                      directive))
                except (OSError, ValueError):
                    # The incarnation died while idle; the job never
                    # reached it, so requeue without charging a
                    # failure and replace the worker on the next pass.
                    lose_incarnation(worker)
                    ready.appendleft(index)
                    continue
                attempts[index] = attempt
                worker.current = _Assignment(index, keys[index],
                                             time.monotonic(),
                                             affinity_hit)
                self.counters["dispatched"] += 1
                if worker.jobs_done > 0:
                    self.counters["reused_jobs"] += 1
                if affinity_hit:
                    self.counters["affinity_hits"] += 1
                else:
                    self.counters["affinity_misses"] += 1

            # -- event-driven wait over every incarnation's pipe
            deadlines = []
            for worker in self._warm_workers.values():
                if worker.current is not None \
                        and self.timeout is not None:
                    deadlines.append(worker.current.started
                                     + self.timeout)
                if self.watchdog is not None:
                    deadlines.append(worker.last_beat + self.watchdog)
            if delayed:
                deadlines.append(min(at for at, _ in delayed))
            budget = self._wait_budget(time.monotonic(), deadlines)
            conns = list(self._warm_workers)
            if not conns:
                if ready:
                    continue  # degraded: dispatch inline immediately
                if budget > 0:
                    time.sleep(budget)
                continue
            for conn in connection_wait(conns, timeout=budget):
                worker = self._warm_workers.get(conn)
                if worker is None:
                    continue  # retired within this wake-up
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                if message is not None and message[0] == HEARTBEAT:
                    worker.last_beat = time.monotonic()
                    continue
                if message is None:
                    # Incarnation lost (crash, chaos kill, OOM...).
                    exit_code = worker.process.exitcode
                    assignment = worker.current
                    lose_incarnation(worker)
                    if assignment is None:
                        continue  # died idle: no job was owed
                    index = assignment.index
                    elapsed = time.monotonic() - assignment.started
                    failures[index] += 1

                    def crashed(index=index, exit_code=exit_code,
                                elapsed=elapsed) -> JobOutcome:
                        return JobOutcome(
                            spec=specs[index], index=index,
                            status=STATUS_CRASHED,
                            error=(f"worker died without reporting "
                                   f"(exit code {exit_code}) after "
                                   f"{attempts[index]} attempt(s)"),
                            seconds=elapsed, attempts=attempts[index])

                    retry_or(index, crashed)
                    continue
                status, data, meta, wstats = message
                worker.last_beat = time.monotonic()
                worker.last_stats = wstats
                assignment = worker.current
                worker.current = None
                if assignment is None:  # pragma: no cover - defensive
                    continue
                index = assignment.index
                worker.jobs_done += 1
                worker.keys.add(assignment.key)
                elapsed = time.monotonic() - assignment.started
                meta = dict(meta or {})
                meta["worker"] = {
                    "generation": worker.generation,
                    "jobs_on_worker": worker.jobs_done,
                    "affinity_hit": assignment.affinity_hit,
                    "rss_kb": (wstats or {}).get("rss_kb"),
                    "checker_memo": (wstats or {}).get("checker_memo"),
                }
                finish(JobOutcome(
                    spec=specs[index], index=index,
                    status=STATUS_OK if status == STATUS_OK
                    else STATUS_ERROR,
                    payload=data if status == STATUS_OK else None,
                    error=None if status == STATUS_OK else data,
                    meta=meta, seconds=elapsed,
                    attempts=attempts[index]))
                # Bounded incarnations: recycle on the job-count or
                # RSS ceiling so warm state cannot leak unboundedly.
                recycle = None
                if self.recycle_after is not None \
                        and worker.jobs_done >= self.recycle_after:
                    recycle = "jobs"
                elif self.max_worker_rss_mb is not None and wstats \
                        and (wstats.get("rss_kb") or 0) \
                        > self.max_worker_rss_mb * 1024:
                    recycle = "rss"
                if recycle is not None:
                    self._drop_warm(worker, stop=True)
                    self.counters["recycles_" + recycle] += 1

            # -- deadline scan: per-job timeouts, hung incarnations
            now = time.monotonic()
            for conn, worker in list(self._warm_workers.items()):
                assignment = worker.current
                silent = self.watchdog is not None \
                    and now - worker.last_beat >= self.watchdog
                if assignment is None:
                    if silent:
                        # A wedged idle incarnation would eat the next
                        # job routed to it; cull it now.
                        self._drop_warm(worker, stop=False)
                        self.counters["idle_culled"] += 1
                    continue
                index = assignment.index
                overdue = self.timeout is not None \
                    and now - assignment.started >= self.timeout
                if not (overdue or silent):
                    continue
                self._warm_workers.pop(conn, None)
                ended_by = reap_process(worker.process, self.term_grace)
                try:
                    conn.close()
                except OSError:
                    pass
                elapsed = now - assignment.started
                if overdue:
                    # Deterministic per-job budget: no retry.  The
                    # incarnation is sacrificed with the job.
                    finish(JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_TIMEOUT,
                        error=(f"job exceeded the {self.timeout:g}s "
                               f"per-job timeout and was terminated "
                               f"(worker ended by {ended_by})"),
                        seconds=elapsed, attempts=attempts[index]))
                    continue
                # Heartbeat silence: infrastructure fault, retried.
                self.counters["workers_lost"] += 1
                failures[index] += 1
                silence = now - worker.last_beat
                if self.chaos is not None:
                    self.chaos.log.record(
                        "watchdog-reap", digest=digests[index],
                        attempt=attempts[index], ended_by=ended_by)

                def hung_out(index=index, silence=silence,
                             ended_by=ended_by,
                             elapsed=elapsed) -> JobOutcome:
                    return JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_TIMEOUT,
                        error=(f"watchdog declared the worker hung "
                               f"(no heartbeat for {silence:.2f}s) on "
                               f"all {attempts[index]} attempt(s); "
                               f"last worker ended by {ended_by}"),
                        seconds=elapsed, attempts=attempts[index])

                retry_or(index, hung_out)

        return [results[index] for index in range(len(specs))]
