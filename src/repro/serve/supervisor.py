"""``SupervisedPool``: the process pool hardened into a fault-tolerant
execution fabric.

:class:`~repro.serve.executors.PoolExecutor` already gives per-job
isolation, timeouts and bounded crash retries.  This module adds the
machinery a *long-running service* needs to survive infrastructure
failure without corrupting results:

* **worker heartbeats + hung-worker watchdog** — every worker runs a
  daemon thread that beats over its result pipe; a worker silent for
  longer than ``watchdog`` seconds is declared hung and reaped (SIGTERM
  escalating to SIGKILL after ``term_grace``).  Heartbeat silence is an
  *infrastructure* fault — the worker may be deadlocked or stopped — so
  hung jobs are retried; only the deterministic per-job ``timeout``
  surfaces without retry.
* **retries with exponential backoff + deterministic seeded jitter** —
  a crashed or hung job is rescheduled after
  ``backoff_base * 2**(failures-1)`` seconds (capped at
  ``backoff_cap``), scaled by a jitter drawn from
  :class:`~repro.workloads.XorShift32` seeded by the job digest and the
  failure count.  Same batch, same crashes => same schedule, so retry
  timing can never leak into results.
* **poison-job quarantine** — a spec whose workers crash
  ``poison_after`` times is a *crash loop*: it gets a structured
  ``poisoned`` outcome instead of eating workers forever, and its
  digest is quarantined on the pool, so every later submission of the
  same digest is refused instantly (attempts=0) until the pool is
  replaced.
* **graceful degradation to serial execution** — if the OS refuses to
  spawn worker processes (fork bombs, rlimits, cgroup pressure), the
  pool flips to running jobs in-process, SerialExecutor-style, rather
  than failing the batch.  Probes that would kill or wedge the calling
  process surface as structured failures instead.  Set
  ``fallback_serial=False`` to get a
  :class:`~repro.errors.SpawnError` instead.
* **chaos hooks** — an optional :class:`~repro.serve.chaos.ChaosMonkey`
  may order a worker killed or hung per (digest, attempt), which is how
  the differential harness proves all of the above is invisible in the
  outcome tables.

The executor contract is unchanged: ``run(specs, on_result=None)``
returns outcomes **in input order**, and no failure mode may hang the
pool or drop a result.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, ServeError, SpawnError
from repro.serve.executors import (
    DEFAULT_TERM_GRACE,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_TIMEOUT,
    JobOutcome,
    OnResult,
    reap_process,
)
from repro.serve.jobspec import KIND_PROBE, JobSpec
from repro.serve.worker import execute_payload, execute_spec
from repro.workloads import XorShift32

#: Message tag workers interleave with their one result message.
HEARTBEAT = "heartbeat"

#: Chaos directives a worker understands (see repro.serve.chaos).
CHAOS_KILL = "kill"
CHAOS_HANG = "hang"


def _supervised_child_entry(payload, conn, heartbeat: float,
                            directive: Optional[str]) -> None:
    """Worker body: heartbeat from a side thread, report one result.

    A chaos ``kill`` directive dies instantly without reporting (a
    machine-level worker loss); ``hang`` wedges *without* starting the
    heartbeat thread, so the parent watchdog — not the per-job timeout
    — must notice.
    """
    if directive == CHAOS_KILL:
        os._exit(137)
    if directive == CHAOS_HANG:
        while True:  # pragma: no cover - reaped by the parent watchdog
            time.sleep(3600)

    send_lock = threading.Lock()
    stop = threading.Event()
    if heartbeat > 0:
        def beat() -> None:
            sequence = 0
            while not stop.wait(heartbeat):
                sequence += 1
                try:
                    with send_lock:
                        if stop.is_set():
                            return
                        conn.send((HEARTBEAT, sequence, None))
                except OSError:  # pragma: no cover - parent went away
                    return

        threading.Thread(target=beat, daemon=True).start()
    try:
        try:
            result, meta = execute_payload(payload)
            message = (STATUS_OK, result, meta)
        except ReproError as error:
            message = (STATUS_ERROR, str(error), None)
        except Exception as error:  # noqa: BLE001 - report, don't die
            message = (STATUS_ERROR, f"{type(error).__name__}: {error}",
                       None)
        with send_lock:
            stop.set()
            conn.send(message)
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:  # pragma: no cover - pipe already gone
            pass


@dataclass
class _Worker:
    index: int
    process: multiprocessing.process.BaseProcess
    started: float
    last_beat: float


class SupervisedPool:
    """Fault-tolerant process-parallel executor (see module docstring).

    Parameters beyond :class:`~repro.serve.executors.PoolExecutor`:

    ``heartbeat``
        Interval (s) between worker heartbeats; 0 disables them (and
        the watchdog with them).
    ``watchdog``
        Heartbeat silence (s) after which a worker counts as hung.
        Must comfortably exceed ``heartbeat``.
    ``retries``
        Re-runs granted after a crash *or* a watchdog-declared hang.
    ``poison_after``
        Worker crashes (per job digest) that trigger quarantine.
    ``backoff_base`` / ``backoff_cap`` / ``backoff_seed``
        Exponential-backoff schedule for retries, jittered
        deterministically from the job digest.
    ``fallback_serial``
        Degrade to in-process execution when spawning fails (else
        raise :class:`~repro.errors.SpawnError`).
    ``chaos``
        Optional :class:`~repro.serve.chaos.ChaosMonkey` consulted per
        (digest, attempt) for an injected worker fault.
    """

    def __init__(self, jobs: int = 2, timeout: Optional[float] = None,
                 retries: int = 2, start_method: Optional[str] = None,
                 term_grace: float = DEFAULT_TERM_GRACE,
                 heartbeat: float = 0.25, watchdog: Optional[float] = 5.0,
                 poison_after: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 backoff_seed: int = 0x5EED,
                 fallback_serial: bool = True,
                 chaos=None):
        if jobs < 1:
            raise ServeError("SupervisedPool needs jobs >= 1")
        if timeout is not None and timeout <= 0:
            raise ServeError("per-job timeout must be positive")
        if retries < 0:
            raise ServeError("retries must be >= 0")
        if term_grace <= 0:
            raise ServeError("term_grace must be positive")
        if heartbeat < 0:
            raise ServeError("heartbeat interval must be >= 0")
        if watchdog is not None and heartbeat > 0 \
                and watchdog <= heartbeat:
            raise ServeError("watchdog must exceed the heartbeat "
                             "interval, or every worker looks hung")
        if poison_after < 1:
            raise ServeError("poison_after must be >= 1")
        if backoff_base < 0 or backoff_cap < backoff_base:
            raise ServeError("need 0 <= backoff_base <= backoff_cap")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.term_grace = term_grace
        self.heartbeat = heartbeat
        self.watchdog = watchdog if heartbeat > 0 else None
        self.poison_after = poison_after
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_seed = backoff_seed
        self.fallback_serial = fallback_serial
        self.chaos = chaos
        #: Scheduler tick: bounds watchdog/backoff latency.
        self.tick = 0.05
        #: True once the pool has fallen back to in-process execution.
        self.degraded = False
        #: digest -> quarantine reason, persistent across run() calls.
        self._quarantined: Dict[str, str] = {}
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)

    # -- deterministic backoff ----------------------------------------

    def backoff_delay(self, digest: str, failures: int) -> float:
        """Sleep before retry number ``failures`` of job ``digest``.

        ``base * 2**(failures-1)`` capped, scaled into [0.5x, 1.0x] by
        a jitter drawn deterministically from (digest, failures, pool
        seed) — spreads retry storms without making the schedule
        depend on wall clock or scheduling order.
        """
        if self.backoff_base == 0:
            return 0.0
        window = min(self.backoff_cap,
                     self.backoff_base * (2 ** max(0, failures - 1)))
        seed = (int(digest[:8], 16) ^ self.backoff_seed ^ failures) or 1
        jitter = XorShift32(seed).next() / 2 ** 32
        return window * (0.5 + 0.5 * jitter)

    # -- quarantine ----------------------------------------------------

    def quarantined(self) -> Dict[str, str]:
        """digest -> reason for every quarantined job spec."""
        return dict(self._quarantined)

    def _quarantine(self, digest: str, reason: str) -> None:
        self._quarantined[digest] = reason
        if self.chaos is not None:
            self.chaos.log.record("quarantine", digest=digest,
                                  reason=reason)

    # -- spawning and degraded execution ------------------------------

    def _spawn(self, payload, directive: Optional[str]):
        """Start one worker; returns (parent_conn, process)."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_supervised_child_entry,
            args=(payload, child_conn, self.heartbeat, directive),
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        return parent_conn, process

    def _run_inline(self, spec: JobSpec, index: int,
                    attempt: int, cause: str) -> JobOutcome:
        """Degraded mode: execute one job in-process, structurally."""
        if spec.kind == KIND_PROBE and spec.behavior in ("crash", "hang",
                                                         "stubborn"):
            return JobOutcome(
                spec=spec, index=index, status=STATUS_CRASHED,
                error=(f"probe({spec.behavior}) cannot run in degraded "
                       f"serial mode (process spawning failed: {cause})"),
                attempts=attempt, meta={"degraded": True})
        started = time.perf_counter()
        try:
            payload, meta = execute_spec(spec)
            meta = dict(meta or {})
            meta["degraded"] = True
            return JobOutcome(spec=spec, index=index, status=STATUS_OK,
                              payload=payload, meta=meta,
                              seconds=time.perf_counter() - started,
                              attempts=attempt)
        except ReproError as error:
            return JobOutcome(spec=spec, index=index, status=STATUS_ERROR,
                              error=str(error),
                              seconds=time.perf_counter() - started,
                              attempts=attempt, meta={"degraded": True})
        except Exception as error:  # noqa: BLE001 - structured outcome
            return JobOutcome(spec=spec, index=index, status=STATUS_ERROR,
                              error=f"{type(error).__name__}: {error}",
                              seconds=time.perf_counter() - started,
                              attempts=attempt, meta={"degraded": True})

    # -- the supervision loop -----------------------------------------

    def run(self, specs: Sequence[JobSpec],
            on_result: Optional[OnResult] = None) -> List[JobOutcome]:
        specs = list(specs)
        payloads = [spec.to_payload() for spec in specs]
        digests = [spec.digest() for spec in specs]
        results: Dict[int, JobOutcome] = {}
        ready: deque = deque(range(len(specs)))
        delayed: List[Tuple[float, int]] = []   # (ready_at, index)
        running: Dict[object, _Worker] = {}
        attempts = [0] * len(specs)
        failures = [0] * len(specs)             # crashes + hangs

        def finish(outcome: JobOutcome) -> None:
            results[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        def retry_or(index: int, make_outcome) -> None:
            """Common crash/hang disposition: quarantine, retry with
            backoff, or surface the structured outcome."""
            digest = digests[index]
            if failures[index] >= self.poison_after:
                reason = (f"crash-looped: {failures[index]} worker(s) "
                          f"lost over {attempts[index]} attempt(s)")
                self._quarantine(digest, reason)
                finish(JobOutcome(
                    spec=specs[index], index=index,
                    status=STATUS_POISONED,
                    error=f"job quarantined as poisoned ({reason})",
                    attempts=attempts[index]))
            elif attempts[index] <= self.retries:
                delay = self.backoff_delay(digest, failures[index])
                delayed.append((time.monotonic() + delay, index))
            else:
                finish(make_outcome())

        while len(results) < len(specs):
            now = time.monotonic()
            if delayed:
                due = [entry for entry in delayed if entry[0] <= now]
                if due:
                    delayed = [entry for entry in delayed
                               if entry[0] > now]
                    # Input order among simultaneously-due retries.
                    ready.extend(sorted(index for _, index in due))

            while ready and len(running) < self.jobs:
                index = ready.popleft()
                digest = digests[index]
                if digest in self._quarantined:
                    finish(JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_POISONED,
                        error=("job digest is quarantined: "
                               + self._quarantined[digest]),
                        attempts=attempts[index]))
                    continue
                attempts[index] += 1
                directive = None
                if self.chaos is not None:
                    directive = self.chaos.worker_directive(
                        digest, attempts[index])
                if self.degraded:
                    finish(self._run_inline(specs[index], index,
                                            attempts[index],
                                            "pool already degraded"))
                    continue
                try:
                    conn, process = self._spawn(payloads[index],
                                                directive)
                except OSError as error:
                    if not self.fallback_serial:
                        raise SpawnError(
                            f"cannot spawn a worker process: {error}"
                        ) from error
                    self.degraded = True
                    finish(self._run_inline(specs[index], index,
                                            attempts[index], str(error)))
                    continue
                started = time.monotonic()
                running[conn] = _Worker(index, process, started, started)

            if not running:
                if not ready and delayed:
                    pause = min(ready_at for ready_at, _ in delayed) \
                        - time.monotonic()
                    if pause > 0:
                        time.sleep(min(pause, self.tick))
                continue

            # A connection is ready when the worker heartbeats, sends
            # its result, or exits (EOF) — crashes wake us immediately.
            for conn in connection_wait(list(running), timeout=self.tick):
                worker = running[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                if message is not None and message[0] == HEARTBEAT:
                    worker.last_beat = time.monotonic()
                    continue
                del running[conn]
                conn.close()
                reap_process(worker.process, self.term_grace)
                elapsed = time.monotonic() - worker.started
                index = worker.index
                if message is None:
                    failures[index] += 1
                    exit_code = worker.process.exitcode

                    def crashed(index=index, exit_code=exit_code,
                                elapsed=elapsed) -> JobOutcome:
                        return JobOutcome(
                            spec=specs[index], index=index,
                            status=STATUS_CRASHED,
                            error=(f"worker died without reporting "
                                   f"(exit code {exit_code}) after "
                                   f"{attempts[index]} attempt(s)"),
                            seconds=elapsed, attempts=attempts[index])

                    retry_or(index, crashed)
                    continue
                status, data, meta = message
                if status == STATUS_OK:
                    finish(JobOutcome(
                        spec=specs[index], index=index, status=STATUS_OK,
                        payload=data, meta=meta, seconds=elapsed,
                        attempts=attempts[index]))
                else:
                    finish(JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_ERROR, error=data, seconds=elapsed,
                        attempts=attempts[index]))

            now = time.monotonic()
            for conn, worker in list(running.items()):
                index = worker.index
                overdue = self.timeout is not None \
                    and now - worker.started >= self.timeout
                hung = self.watchdog is not None \
                    and now - worker.last_beat >= self.watchdog
                if not (overdue or hung):
                    continue
                del running[conn]
                conn.close()
                ended_by = reap_process(worker.process, self.term_grace)
                elapsed = now - worker.started
                if overdue:
                    # Deterministic per-job budget: no retry.
                    finish(JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_TIMEOUT,
                        error=(f"job exceeded the {self.timeout:g}s "
                               f"per-job timeout and was terminated "
                               f"(worker ended by {ended_by})"),
                        seconds=elapsed, attempts=attempts[index]))
                    continue
                # Heartbeat silence: infrastructure fault, retried.
                failures[index] += 1
                silence = now - worker.last_beat
                if self.chaos is not None:
                    self.chaos.log.record(
                        "watchdog-reap", digest=digests[index],
                        attempt=attempts[index], ended_by=ended_by)

                def hung_out(index=index, silence=silence,
                             ended_by=ended_by,
                             elapsed=elapsed) -> JobOutcome:
                    return JobOutcome(
                        spec=specs[index], index=index,
                        status=STATUS_TIMEOUT,
                        error=(f"watchdog declared the worker hung "
                               f"(no heartbeat for {silence:.2f}s) on "
                               f"all {attempts[index]} attempt(s); "
                               f"last worker ended by {ended_by}"),
                        seconds=elapsed, attempts=attempts[index])

                retry_or(index, hung_out)

        return [results[index] for index in range(len(specs))]
