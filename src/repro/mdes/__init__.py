"""Machine description (the paper's HMDES role, §4.1).

"Processor organisation information, including number of functional
units, instruction issues per cycle and functionality of each module, is
captured in the machine description language HMDES and serve as an input
to elcor.  By modifying the appropriate entries in the machine
description file during customisation, the compiler is able to support
our design, without the need for recompiling the compiler itself."

:class:`Mdes` is generated from a :class:`~repro.config.MachineConfig`
and consumed by the scheduler (`repro.sched`) and the simulator — the
same single source of truth the paper relies on to keep compile-time
schedules and hardware behaviour consistent.
"""

from repro.mdes.mdes import Mdes, ResourceSet
from repro.mdes.text import emit_hmdes, parse_hmdes

__all__ = ["Mdes", "ResourceSet", "emit_hmdes", "parse_hmdes"]
