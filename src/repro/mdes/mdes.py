"""Machine-description object consumed by the scheduler and simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import MachineConfig
from repro.errors import MdesError
from repro.isa.opcodes import FuClass, OpcodeInfo, OpcodeTable, build_opcode_table


@dataclass(frozen=True)
class ResourceSet:
    """Number of each functional-unit resource available per cycle."""

    alu: int
    lsu: int
    cmpu: int
    bru: int
    issue_slots: int

    def count(self, fu_class: FuClass) -> int:
        if fu_class is FuClass.ALU:
            return self.alu
        if fu_class is FuClass.LSU:
            return self.lsu
        if fu_class is FuClass.CMPU:
            return self.cmpu
        if fu_class is FuClass.BRU:
            return self.bru
        if fu_class is FuClass.MISC:
            return self.issue_slots
        raise MdesError(f"unknown functional-unit class {fu_class!r}")


class Mdes:
    """Resource and latency model of one processor configuration.

    The datapath (paper Fig. 2) has N ALUs and exactly one LSU, CMPU and
    BRU; up to ``issue_width`` operations launch per cycle.  Latencies
    come from the configuration so that the scheduler's assumptions match
    the simulated hardware exactly (the EPIC contract).
    """

    def __init__(self, config: MachineConfig, table: Optional[OpcodeTable] = None):
        self.config = config
        self.table = table if table is not None else build_opcode_table(config)
        self.resources = ResourceSet(
            alu=config.n_alus,
            lsu=1,
            cmpu=1,
            bru=1,
            issue_slots=config.issue_width,
        )
        self._latency_table: Dict[str, int] = config.latency

    # -- queries ----------------------------------------------------------

    def latency_of(self, info: OpcodeInfo) -> int:
        """Result latency of one operation, in cycles."""
        if info.is_custom:
            return info.custom_spec.latency
        try:
            return self._latency_table[info.latency_class]
        except KeyError:
            raise MdesError(
                f"no latency entry for class {info.latency_class!r}"
            ) from None

    def latency_of_mnemonic(self, mnemonic: str) -> int:
        return self.latency_of(self.table.lookup(mnemonic))

    def resource_count(self, fu_class: FuClass) -> int:
        return self.resources.count(fu_class)

    def supports(self, mnemonic: str) -> bool:
        """Whether this configuration implements the operation at all."""
        return mnemonic in self.table

    @property
    def issue_width(self) -> int:
        return self.config.issue_width

    @property
    def max_latency(self) -> int:
        return max(self.latency_of(info) for info in self.table)

    def describe(self) -> str:
        return (
            f"mdes({self.config.describe()}, "
            f"{len(self.table)} ops, max latency {self.max_latency})"
        )
