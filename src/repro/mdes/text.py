"""HMDES-flavoured textual machine description.

Trimaran's elcor reads an HMDES file; our scheduler reads an
:class:`~repro.mdes.Mdes` object directly, but for fidelity (and for
inspection/diffing of design points) the description can be emitted to
and re-parsed from a compact HMDES-like section syntax::

    SECTION Resource {
      alu (count 4);
      lsu (count 1);
      ...
    }
    SECTION Operation {
      ADD (class alu latency 1);
      ...
    }
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

from repro.errors import MdesError
from repro.mdes.mdes import Mdes

_SECTION_RE = re.compile(r"SECTION\s+(\w+)\s*\{([^}]*)\}", re.DOTALL)
_ENTRY_RE = re.compile(r"(\w+)\s*\(([^)]*)\)\s*;")


def emit_hmdes(mdes: Mdes) -> str:
    """Serialise resources and per-operation latencies."""
    lines = ["// generated machine description (HMDES-flavoured)"]
    lines.append("SECTION Resource {")
    resources = mdes.resources
    for name, count in (
        ("alu", resources.alu),
        ("lsu", resources.lsu),
        ("cmpu", resources.cmpu),
        ("bru", resources.bru),
        ("issue", resources.issue_slots),
    ):
        lines.append(f"  {name} (count {count});")
    lines.append("}")
    lines.append("SECTION Operation {")
    for info in sorted(mdes.table, key=lambda i: i.code):
        lines.append(
            f"  {info.mnemonic} (class {info.fu_class.value} "
            f"latency {mdes.latency_of(info)} code {info.code});"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def parse_hmdes(text: str) -> Tuple[Dict[str, int], Dict[str, Dict[str, object]]]:
    """Parse emitted text back into (resources, operations) dictionaries.

    The parser is deliberately forgiving about whitespace and comments;
    it validates structure and returns plain dictionaries, which tests
    compare against the generating :class:`Mdes`.
    """
    text = re.sub(r"//[^\n]*", "", text)
    sections = {match.group(1): match.group(2) for match in _SECTION_RE.finditer(text)}
    if "Resource" not in sections or "Operation" not in sections:
        raise MdesError("missing Resource or Operation section")

    resources: Dict[str, int] = {}
    for name, body in _ENTRY_RE.findall(sections["Resource"]):
        fields = body.split()
        if len(fields) != 2 or fields[0] != "count":
            raise MdesError(f"malformed resource entry for {name!r}")
        resources[name] = int(fields[1])

    operations: Dict[str, Dict[str, object]] = {}
    for name, body in _ENTRY_RE.findall(sections["Operation"]):
        fields = body.split()
        if len(fields) % 2 != 0:
            raise MdesError(f"malformed operation entry for {name!r}")
        entry: Dict[str, object] = {}
        for key, value in zip(fields[::2], fields[1::2]):
            entry[key] = int(value) if value.isdigit() else value
        for required in ("class", "latency", "code"):
            if required not in entry:
                raise MdesError(f"operation {name!r} missing {required!r}")
        operations[name] = entry
    return resources, operations
