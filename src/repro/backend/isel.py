"""Instruction selection: IR -> MOps with virtual registers.

Includes the two EPIC-specific lowering tricks the paper's toolchain
relies on:

* **compare/branch fusion** — an IR ``Cmp`` whose only consumer is the
  block's ``CondBr`` becomes a single CMPP feeding BRCT/BRCF through a
  predicate register, never materialising a 0/1 word;
* **if-conversion** — small diamonds/triangles become straight-line
  predicated code ("predicated instructions transform control dependence
  to data dependence", §2): one CMPP writes a true/false predicate pair
  and both arms execute under opposite guards, squashing at write-back.

Large constants are materialised with MOVI (the long-immediate move);
short literals ride in the tagged SRC fields.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import AluFeature, MachineConfig
from repro.errors import ScheduleError
from repro.ir import instructions as ir
from repro.ir.module import Function, Module
from repro.ir.values import Const, Sym, Value, VReg
from repro.isa.encoding import InstructionFormat
from repro.isa.operands import Btr, Lit, Pred, Reg, PRED_TRUE
from repro.backend.mops import CALL, ENTER, MBlock, MFunction, MOp, RET, VR

_BIN_MNEMONIC = {
    "add": "ADD", "sub": "SUB", "mul": "MUL", "div": "DIV", "rem": "REM",
    "and": "AND", "or": "OR", "xor": "XOR",
    "shl": "SHL", "shr": "SHR", "shra": "SHRA",
}
_CMP_MNEMONIC = {
    "eq": "CMPP_EQ", "ne": "CMPP_NE", "lt": "CMPP_LT", "le": "CMPP_LE",
    "gt": "CMPP_GT", "ge": "CMPP_GE", "ult": "CMPP_ULT", "uge": "CMPP_UGE",
}

#: Maximum IR operations per arm for if-conversion.
IF_CONVERT_MAX_OPS = 8

#: Rotating pools.  Predicate 0 is the hardwired true guard; BTRs rotate
#: over a small window so nearby branch sites never collide.
_BTR_WINDOW = 8


def block_label(function_name: str, block_name: str, entry: str) -> str:
    if block_name == entry:
        return function_name
    return f"{function_name}${block_name}"


@dataclass
class _Diamond:
    then_name: Optional[str]
    else_name: Optional[str]
    join_name: str
    merge_join: bool


class EpicISel:
    """Selects one IR function into an :class:`MFunction`."""

    def __init__(self, function: Function, module: Module,
                 config: MachineConfig, fmt: InstructionFormat,
                 global_addresses: Dict[str, int],
                 if_convert: bool = True):
        self.function = function
        self.module = module
        self.config = config
        self.fmt = fmt
        self.addresses = global_addresses
        self.if_convert = if_convert
        self.mfunc = MFunction(name=function.name)
        self.vreg_map: Dict[VReg, VR] = {}
        self._pred_cursor = 0
        self._btr_cursor = 0
        self._use_counts = self._count_uses()
        self._preds = function.predecessors()
        self._blocks = {block.name: block for block in function.blocks}
        self._order = [block.name for block in function.blocks]
        self._consumed: Set[str] = set()
        self._alloca_count = 0
        if not config.has_feature(AluFeature.MULTIPLY):
            raise ScheduleError(
                "configurations without the multiply feature require the "
                "software-multiply runtime, which is not wired up; enable "
                "AluFeature.MULTIPLY"
            )
        self.expand_div = not config.has_feature(AluFeature.DIVIDE)
        if not config.has_feature(AluFeature.SHIFT):
            raise ScheduleError(
                "the code generator requires the shift feature "
                "(AluFeature.SHIFT)"
            )

    # -- small allocators ---------------------------------------------------

    def _new_pred_pair(self) -> Tuple[Pred, Pred]:
        count = self.config.n_preds - 1
        if count < 2:
            raise ScheduleError("need at least 3 predicate registers")
        first = 1 + self._pred_cursor % count
        self._pred_cursor += 1
        second = 1 + self._pred_cursor % count
        self._pred_cursor += 1
        return Pred(first), Pred(second)

    def _new_pred(self) -> Pred:
        count = self.config.n_preds - 1
        index = 1 + self._pred_cursor % count
        self._pred_cursor += 1
        return Pred(index)

    def _new_btr(self) -> Btr:
        window = min(self.config.n_btrs, _BTR_WINDOW)
        index = self._btr_cursor % window
        self._btr_cursor += 1
        return Btr(index)

    def _count_uses(self) -> Counter:
        counts: Counter = Counter()
        for instr in self.function.instructions():
            for value in instr.uses():
                if isinstance(value, VReg):
                    counts[value] += 1
        return counts

    # -- operand legalisation --------------------------------------------------

    def _vr(self, reg: VReg) -> VR:
        if reg not in self.vreg_map:
            self.vreg_map[reg] = self.mfunc.new_vr(reg.hint)
        return self.vreg_map[reg]

    def _address_of(self, sym: Sym) -> int:
        try:
            return self.addresses[sym.name] + sym.offset
        except KeyError:
            raise ScheduleError(f"undefined global {sym.name!r}") from None

    def _materialize(self, out: List[MOp], value: int, guard: Pred,
                     hint: str = "imm") -> VR:
        temp = self.mfunc.new_vr(hint)
        out.append(MOp("MOVI", dest1=temp, src1=Lit(value), guard=guard))
        return temp

    def _operand(self, out: List[MOp], value: Value, guard: Pred):
        """Legalise an IR value into a register or short literal."""
        if isinstance(value, VReg):
            return self._vr(value)
        if isinstance(value, Const):
            if self.fmt.literal_fits(value.value):
                return Lit(value.value)
            return self._materialize(out, value.value, guard)
        if isinstance(value, Sym):
            address = self._address_of(value)
            if self.fmt.literal_fits(address):
                return Lit(address)
            return self._materialize(out, address, guard, hint="addr")
        raise ScheduleError(f"cannot legalise operand {value!r}")

    def _register_operand(self, out: List[MOp], value: Value, guard: Pred):
        """Legalise into a register (stores need a register value)."""
        operand = self._operand(out, value, guard)
        if isinstance(operand, Lit):
            temp = self.mfunc.new_vr("tmp")
            out.append(MOp("MOVE", dest1=temp, src1=operand, guard=guard))
            return temp
        return operand

    # -- body selection -----------------------------------------------------------

    def _select_body(self, instrs: Sequence[ir.Instr], out: List[MOp],
                     guard: Pred, skip: Set[int] = frozenset()) -> None:
        for index, instr in enumerate(instrs):
            if index in skip:
                continue
            self._select_instr(instr, out, guard)

    def _select_instr(self, instr: ir.Instr, out: List[MOp],
                      guard: Pred) -> None:
        if isinstance(instr, ir.BinOp):
            if instr.op in ("div", "rem") and self.expand_div:
                callee = "__divsi3" if instr.op == "div" else "__modsi3"
                if guard.index != PRED_TRUE:
                    raise ScheduleError(
                        "cannot expand division under a guard"
                    )
                args = [self._operand(out, v, guard) for v in (instr.a, instr.b)]
                out.append(MOp(CALL, dest1=self._vr(instr.dst),
                               target=callee, args=args))
                self.mfunc.has_calls = True
                return
            a = self._operand(out, instr.a, guard)
            b = self._operand(out, instr.b, guard)
            if isinstance(a, Lit) and isinstance(b, Lit):
                # Should have been constant-folded; legalise anyway.
                a = self._register_operand(out, Const(a.value), guard)
            out.append(MOp(_BIN_MNEMONIC[instr.op], dest1=self._vr(instr.dst),
                           src1=a, src2=b, guard=guard))
            return

        if isinstance(instr, ir.Cmp):
            # Materialise a 0/1 word via a predicate pair and two guarded
            # immediates (only for compares that were not branch-fused).
            if guard.index != PRED_TRUE:
                raise ScheduleError("cannot materialise a compare under a guard")
            a = self._operand(out, instr.a, guard)
            b = self._operand(out, instr.b, guard)
            p_true, p_false = self._new_pred_pair()
            dst = self._vr(instr.dst)
            out.append(MOp(_CMP_MNEMONIC[instr.op], dest1=p_true,
                           dest2=p_false, src1=a, src2=b, guard=guard))
            out.append(MOp("MOVI", dest1=dst, src1=Lit(1), guard=p_true))
            out.append(MOp("MOVI", dest1=dst, src1=Lit(0), guard=p_false))
            return

        if isinstance(instr, ir.Copy):
            src = self._operand(out, instr.src, guard)
            mnemonic = "MOVE"
            if isinstance(src, Lit) and not self.fmt.literal_fits(src.value):
                mnemonic = "MOVI"
            out.append(MOp(mnemonic, dest1=self._vr(instr.dst), src1=src,
                           guard=guard))
            return

        if isinstance(instr, ir.Load):
            base, offset = self._address_pair(out, instr.base, instr.offset,
                                              guard)
            mnemonic = "LWS" if instr.speculative else "LW"
            out.append(MOp(mnemonic, dest1=self._vr(instr.dst), src1=base,
                           src2=offset, guard=guard))
            return

        if isinstance(instr, ir.Store):
            value = self._register_operand(out, instr.value, guard)
            base, offset = self._address_pair(out, instr.base, instr.offset,
                                              guard)
            out.append(MOp("SW", dest1=value, src1=base, src2=offset,
                           guard=guard))
            return

        if isinstance(instr, ir.Alloca):
            marker = f"alloca:{self._alloca_count}"
            self._alloca_count += 1
            vr = self._vr(instr.dst)
            self.mfunc.allocas.append((vr, instr.size))
            out.append(MOp("ADD", dest1=vr, src1=Reg(1), src2=Lit(0),
                           guard=guard, target=marker))
            return

        if isinstance(instr, ir.Call):
            # Custom-instruction intrinsics (paper §3.3): a call to a
            # two-argument function whose name matches a configured
            # custom opcode becomes that single ALU operation.  The
            # function body remains the software fallback for targets
            # without the instruction (golden interpreter, baseline,
            # configurations that omit it).
            mnemonic = instr.callee.upper()
            if (instr.dst is not None and len(instr.args) == 2
                    and mnemonic in self.fmt.table
                    and self.fmt.table.lookup(mnemonic).is_custom):
                a = self._operand(out, instr.args[0], guard)
                b = self._operand(out, instr.args[1], guard)
                out.append(MOp(mnemonic, dest1=self._vr(instr.dst),
                               src1=a, src2=b, guard=guard))
                return
            if guard.index != PRED_TRUE:
                raise ScheduleError("cannot call under a guard")
            args = [self._operand(out, v, guard) for v in instr.args]
            dest = self._vr(instr.dst) if instr.dst is not None else None
            out.append(MOp(CALL, dest1=dest, target=instr.callee, args=args))
            self.mfunc.has_calls = True
            return

        raise ScheduleError(f"cannot select {instr}")  # pragma: no cover

    def _address_pair(self, out: List[MOp], base: Value, offset: Value,
                      guard: Pred):
        """Legalise a (base, offset) pair; folds const+const addresses."""
        if isinstance(base, (Const, Sym)) and isinstance(offset, Const):
            base_value = (
                base.value if isinstance(base, Const)
                else self._address_of(base)
            )
            total = base_value + offset.value
            if self.fmt.literal_fits(total):
                return Reg(0), Lit(total)
            return self._materialize(out, total, guard, hint="addr"), Lit(0)
        base_op = self._operand(out, base, guard)
        offset_op = self._operand(out, offset, guard)
        if isinstance(base_op, Lit) and isinstance(offset_op, Lit):
            return Reg(0), Lit(base_op.value + offset_op.value)
        if isinstance(base_op, Lit):
            base_op, offset_op = offset_op, base_op
        return base_op, offset_op

    # -- compare/branch fusion -----------------------------------------------

    def _fusible_cmp(self, block) -> Optional[int]:
        """Index of a Cmp in ``block`` fused into its CondBr, if any."""
        term = block.terminator
        if not isinstance(term, ir.CondBr) or not isinstance(term.cond, VReg):
            return None
        if self._use_counts[term.cond] != 1:
            return None
        for index in range(len(block.instrs) - 2, -1, -1):
            instr = block.instrs[index]
            if term.cond in instr.defs():
                if isinstance(instr, ir.Cmp):
                    return index
                return None
        return None

    # -- if-conversion ----------------------------------------------------------

    def _arm_convertible(self, name: str, origin: str, join: str) -> bool:
        if name == join:
            return True
        block = self._blocks[name]
        if self._preds[name] != [origin]:
            return False
        term = block.terminator
        if not isinstance(term, ir.Br) or term.target != join:
            return False
        body = block.body
        if len(body) > IF_CONVERT_MAX_OPS:
            return False
        for instr in body:
            if not isinstance(instr, (ir.BinOp, ir.Copy, ir.Load, ir.Store)):
                return False
            if isinstance(instr, ir.BinOp) and instr.op in ("div", "rem") \
                    and self.expand_div:
                return False
        return True

    def _find_diamond(self, block) -> Optional[_Diamond]:
        if not self.if_convert:
            return None
        term = block.terminator
        if not isinstance(term, ir.CondBr):
            return None
        then_name, else_name = term.if_true, term.if_false
        if then_name == else_name:
            return None

        # Triangle with a fallthrough arm on either side.
        candidates = []
        then_block = self._blocks[then_name]
        else_block = self._blocks[else_name]
        then_term = then_block.terminator
        else_term = else_block.terminator
        if isinstance(then_term, ir.Br) and then_term.target == else_name:
            candidates.append((then_name, None, else_name))
        if isinstance(else_term, ir.Br) and else_term.target == then_name:
            candidates.append((None, else_name, then_name))
        if isinstance(then_term, ir.Br) and isinstance(else_term, ir.Br) \
                and then_term.target == else_term.target:
            candidates.append((then_name, else_name, then_term.target))

        for then_arm, else_arm, join in candidates:
            if join in (then_arm, else_arm) or join == block.name:
                continue
            arms_ok = True
            for arm in (then_arm, else_arm):
                if arm is not None and not self._arm_convertible(
                        arm, block.name, join):
                    arms_ok = False
            if not arms_ok:
                continue
            join_preds = set(self._preds[join])
            expected = {arm for arm in (then_arm, else_arm) if arm is not None}
            if then_arm is None or else_arm is None:
                expected.add(block.name)
            merge_join = join_preds == expected
            return _Diamond(then_arm, else_arm, join, merge_join)
        return None

    # -- block / terminator selection -----------------------------------------

    def _next_in_layout(self, name: str) -> Optional[str]:
        position = self._order.index(self._head)
        for candidate in self._order[position + 1:]:
            if candidate not in self._consumed:
                return candidate
        return None

    def _label(self, block_name: str) -> str:
        return block_label(self.function.name, block_name,
                           self.function.entry.name)

    def _emit_branch_to(self, out: List[MOp], target: str,
                        fallthrough: Optional[str]) -> None:
        if target == fallthrough:
            return
        btr = self._new_btr()
        out.append(MOp("PBR", dest1=btr, src1=Lit(0),
                       target=self._label(target)))
        out.append(MOp("BR", src1=btr))

    def _emit_cond_branch(self, out: List[MOp], block,
                          skip: Set[int]) -> None:
        term = block.terminator
        fused_index = self._fusible_cmp(block)
        if fused_index is not None and fused_index in skip:
            cmp_instr = block.instrs[fused_index]
            a = self._operand(out, cmp_instr.a, Pred(PRED_TRUE))
            b = self._operand(out, cmp_instr.b, Pred(PRED_TRUE))
            p_true = self._new_pred()
            out.append(MOp(_CMP_MNEMONIC[cmp_instr.op], dest1=p_true,
                           dest2=Pred(0), src1=a, src2=b))
        else:
            cond = self._operand(out, term.cond, Pred(PRED_TRUE))
            if isinstance(cond, Lit):
                cond = self._register_operand(out, Const(cond.value),
                                              Pred(PRED_TRUE))
            p_true = self._new_pred()
            out.append(MOp("CMPP_NE", dest1=p_true, dest2=Pred(0),
                           src1=cond, src2=Lit(0)))

        fallthrough = self._next_in_layout(block.name)
        then_name, else_name = term.if_true, term.if_false
        if else_name == fallthrough:
            btr = self._new_btr()
            out.append(MOp("PBR", dest1=btr, src1=Lit(0),
                           target=self._label(then_name)))
            out.append(MOp("BRCT", src1=btr, src2=p_true))
        elif then_name == fallthrough:
            btr = self._new_btr()
            out.append(MOp("PBR", dest1=btr, src1=Lit(0),
                           target=self._label(else_name)))
            out.append(MOp("BRCF", src1=btr, src2=p_true))
        else:
            btr_true = self._new_btr()
            out.append(MOp("PBR", dest1=btr_true, src1=Lit(0),
                           target=self._label(then_name)))
            out.append(MOp("BRCT", src1=btr_true, src2=p_true))
            self._emit_branch_to(out, else_name, fallthrough)

    def _select_block_chain(self, name: str, out: List[MOp]) -> None:
        """Select ``name`` and any if-converted continuation into ``out``."""
        self._head = name
        while True:
            block = self._blocks[name]
            term = block.terminator
            skip: Set[int] = set()
            fused = self._fusible_cmp(block)
            if fused is not None:
                skip.add(fused)

            diamond = (
                self._find_diamond(block)
                if isinstance(term, ir.CondBr) else None
            )
            if diamond is not None:
                self._select_body(block.body, out, Pred(PRED_TRUE), skip)
                # One CMPP produces the true/false predicate pair.
                p_true, p_false = self._new_pred_pair()
                if fused is not None:
                    cmp_instr = block.instrs[fused]
                    a = self._operand(out, cmp_instr.a, Pred(PRED_TRUE))
                    b = self._operand(out, cmp_instr.b, Pred(PRED_TRUE))
                    out.append(MOp(_CMP_MNEMONIC[cmp_instr.op], dest1=p_true,
                                   dest2=p_false, src1=a, src2=b))
                else:
                    cond = self._operand(out, term.cond, Pred(PRED_TRUE))
                    if isinstance(cond, Lit):
                        cond = self._register_operand(
                            out, Const(cond.value), Pred(PRED_TRUE))
                    out.append(MOp("CMPP_NE", dest1=p_true, dest2=p_false,
                                   src1=cond, src2=Lit(0)))
                for arm, pred in ((diamond.then_name, p_true),
                                  (diamond.else_name, p_false)):
                    if arm is None:
                        continue
                    self._consumed.add(arm)
                    self._select_body(self._blocks[arm].body, out, pred)
                if diamond.merge_join and diamond.join_name not in self._consumed:
                    self._consumed.add(diamond.join_name)
                    name = diamond.join_name
                    continue
                fallthrough = self._next_in_layout(block.name)
                self._emit_branch_to(out, diamond.join_name, fallthrough)
                return

            self._select_body(block.body, out, Pred(PRED_TRUE), skip)
            if isinstance(term, ir.Ret):
                value = None
                if term.value is not None:
                    value = self._operand(out, term.value, Pred(PRED_TRUE))
                out.append(MOp(RET, src1=value))
                return
            if isinstance(term, ir.Br):
                fallthrough = self._next_in_layout(block.name)
                self._emit_branch_to(out, term.target, fallthrough)
                return
            if isinstance(term, ir.CondBr):
                self._emit_cond_branch(out, block, skip)
                return
            raise ScheduleError(f"unknown terminator {term}")  # pragma: no cover

    def run(self) -> MFunction:
        entry_name = self.function.entry.name
        for name in self._order:
            if name in self._consumed:
                continue
            self._consumed.add(name)
            mblock = MBlock(self._label(name))
            if name == entry_name:
                params = [self._vr(param) for param in self.function.params]
                mblock.mops.append(MOp(ENTER, args=list(params)))
            self._select_block_chain(name, mblock.mops)
            self.mfunc.blocks.append(mblock)
        return self.mfunc
