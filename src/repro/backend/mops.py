"""Machine operations (MOps): the backend's working representation.

A MOp mirrors an EPIC :class:`~repro.isa.Instruction` but may carry
*virtual* general-purpose registers (:class:`VR`) before register
allocation, symbolic branch targets before assembly, and three pseudo
operations (``ENTER``, ``CALL``, ``RET``) that encapsulate the calling
convention until it is expanded post-allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ScheduleError
from repro.isa.operands import Btr, Lit, Pred, Reg
from repro.isa.operands import PRED_TRUE


@dataclass(frozen=True)
class VR:
    """A virtual general-purpose register."""

    id: int
    hint: str = ""

    def __str__(self) -> str:
        return f"v{self.id}"


@dataclass(frozen=True)
class SpillRef:
    """A spilled value referenced by a CALL/ENTER pseudo: resolved to a
    frame slot access when the pseudo is expanded (the two scratch
    registers cannot cover an arbitrary number of call arguments)."""

    slot: int

    def __str__(self) -> str:
        return f"[spill {self.slot}]"


MOperand = Union[VR, Reg, Pred, Btr, Lit, SpillRef]

#: Pseudo mnemonics (expanded before scheduling).
ENTER = "__ENTER"   # defines the parameter VRs from the arg registers
CALL = "__CALL"     # srcs = argument VRs/operands, dest = result VR
RET = "__RET"       # src = return value (or None)


@dataclass
class MOp:
    """One machine operation; mutable so passes can rewrite in place."""

    mnemonic: str
    dest1: Optional[MOperand] = None
    dest2: Optional[MOperand] = None
    src1: Optional[MOperand] = None
    src2: Optional[MOperand] = None
    guard: Pred = Pred(PRED_TRUE)
    #: Symbolic branch target (PBR) or callee name (CALL pseudo).
    target: Optional[str] = None
    #: CALL pseudo: argument operands beyond the src fields.
    args: List[MOperand] = field(default_factory=list)

    @property
    def is_pseudo(self) -> bool:
        return self.mnemonic in (ENTER, CALL, RET)

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in ("BR", "BRCT", "BRCF", "BRL", "HALT", CALL, RET)

    def operands(self) -> List[MOperand]:
        return [
            op for op in (self.dest1, self.dest2, self.src1, self.src2)
            if op is not None
        ] + list(self.args)

    # -- register read/write sets (virtual and physical GPRs) -------------

    def gpr_reads(self) -> List[MOperand]:
        """GPR-space operands this op reads (VR or Reg)."""
        reads: List[MOperand] = []
        if self.mnemonic == CALL:
            reads.extend(a for a in self.args if isinstance(a, (VR, Reg)))
            return reads
        if self.mnemonic == RET:
            if isinstance(self.src1, (VR, Reg)):
                reads.append(self.src1)
            return reads
        if self.mnemonic == ENTER:
            return reads
        if self.mnemonic == "SW" and isinstance(self.dest1, (VR, Reg)):
            reads.append(self.dest1)
        for op in (self.src1, self.src2):
            if isinstance(op, (VR, Reg)):
                reads.append(op)
        return reads

    def gpr_writes(self) -> List[MOperand]:
        """GPR-space operands this op writes."""
        if self.mnemonic == ENTER:
            return [a for a in self.args if isinstance(a, (VR, Reg))]
        if self.mnemonic == "SW":
            return []
        writes: List[MOperand] = []
        for op in (self.dest1, self.dest2):
            if isinstance(op, (VR, Reg)):
                writes.append(op)
        return writes

    def rewrite_registers(self, mapping: Dict[VR, Reg],
                          partial: bool = False) -> None:
        """Replace virtual registers according to ``mapping``.

        With ``partial`` unmapped VRs are left untouched (used while
        inserting spill code before the final rewrite); otherwise an
        unmapped VR is an allocator bug and raises.
        """

        def swap(op: Optional[MOperand]) -> Optional[MOperand]:
            if isinstance(op, VR):
                if op in mapping:
                    return mapping[op]
                if partial:
                    return op
                raise ScheduleError(f"unallocated register {op}")
            return op

        self.dest1 = swap(self.dest1)
        self.dest2 = swap(self.dest2)
        self.src1 = swap(self.src1)
        self.src2 = swap(self.src2)
        self.args = [swap(a) for a in self.args]

    def __str__(self) -> str:
        pieces = [self.mnemonic]
        rendered = [
            str(op)
            for op in (self.dest1, self.dest2, self.src1, self.src2)
            if op is not None
        ]
        if self.args:
            rendered.append("(" + ", ".join(str(a) for a in self.args) + ")")
        if self.target:
            rendered.append(f"@{self.target}")
        text = " ".join([pieces[0], ", ".join(rendered)]) if rendered else pieces[0]
        if self.guard.index != PRED_TRUE:
            text = f"({self.guard}) {text}"
        return text


@dataclass
class MBlock:
    """A machine basic block with a unique assembly label."""

    label: str
    mops: List[MOp] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {mop}" for mop in self.mops)
        return "\n".join(lines)


@dataclass
class MFunction:
    """A function in backend form."""

    name: str
    blocks: List[MBlock] = field(default_factory=list)
    next_vr: int = 0
    #: Frame slots used by allocas: list of (VR, size); offsets assigned
    #: at expansion time.
    allocas: List[Tuple[VR, int]] = field(default_factory=list)
    #: Number of spill slots added by the register allocator.
    spill_slots: int = 0
    #: Whether the function contains CALL pseudos (non-leaf).
    has_calls: bool = False

    def new_vr(self, hint: str = "") -> VR:
        reg = VR(self.next_vr, hint)
        self.next_vr += 1
        return reg

    def mops(self):
        for block in self.blocks:
            yield from block.mops

    def __str__(self) -> str:
        return f"mfunc {self.name}:\n" + "\n".join(
            str(block) for block in self.blocks
        )
