"""Post-allocation expansion: frames, prologue/epilogue, calls, returns.

Frame layout (word offsets from the *new* stack pointer)::

    sp + 0 .. A-1            local arrays (allocas)
    sp + A .. A+S-1          spill slots
    sp + A+S .. A+S+K-1      saved callee-saved registers (+ ra if needed)

The ENTER pseudo becomes ``SUB sp`` + saves + parameter copies (resolved
as a parallel copy so an incoming argument register is never clobbered
before it is read); CALL becomes argument moves + PBR + BRL + a result
copy; RET becomes the return-value move + restores + ``ADD sp`` +
``MOVGBP``/``BR`` through a branch-target register.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.mops import (
    CALL, ENTER, MBlock, MFunction, MOp, RET, SpillRef, VR,
)
from repro.errors import ScheduleError
from repro.isa.encoding import InstructionFormat
from repro.isa.operands import Btr, Lit, Pred, Reg
from repro.sched.convention import RegConvention
from repro.sched.regalloc import AllocationResult

_BTR_WINDOW = 8


def sequentialize_parallel_copies(
        pairs: Sequence[Tuple[int, int]], scratch: int) -> List[Tuple[int, int]]:
    """Order (dst, src) register copies so no source is clobbered early.

    Cycles are broken through ``scratch``.  Returns the sequential list
    of (dst, src) moves to emit.
    """
    pending: Dict[int, int] = {}
    for dst, src in pairs:
        if dst == src:
            continue
        if dst in pending:
            raise ScheduleError(f"duplicate copy destination r{dst}")
        pending[dst] = src
    order: List[Tuple[int, int]] = []
    while pending:
        sources = set(pending.values())
        free = [dst for dst in pending if dst not in sources]
        if free:
            dst = free[0]
            order.append((dst, pending.pop(dst)))
            continue
        # Pure cycle: park one source in the scratch register.
        dst, src = next(iter(pending.items()))
        order.append((scratch, src))
        for key, value in list(pending.items()):
            if value == src:
                pending[key] = scratch
    return order


class _FrameInfo:
    """Frame layout: allocas | spill slots | saved registers | incoming
    stack arguments.  The incoming-argument area sits at the very top of
    the frame so that the slots the *caller* wrote just below its own
    stack pointer (at ``sp - E + e``) become ``sp + size - E + e`` after
    the callee's prologue adjusts ``sp``."""

    def __init__(self, mfunc: MFunction, saved: List[int],
                 n_stack_params: int = 0):
        self.alloca_offsets: Dict[int, int] = {}
        cursor = 0
        for index, (_, size) in enumerate(mfunc.allocas):
            self.alloca_offsets[index] = cursor
            cursor += size
        self.spill_base = cursor
        cursor += mfunc.spill_slots
        self.save_offsets: Dict[int, int] = {}
        for reg in saved:
            self.save_offsets[reg] = cursor
            cursor += 1
        self.incoming_base = cursor
        cursor += n_stack_params
        self.size = cursor


def count_stack_params(mfunc: MFunction, max_reg_args: int) -> int:
    """Parameters beyond the register-argument window (ENTER's args)."""
    for block in mfunc.blocks:
        for mop in block.mops:
            if mop.mnemonic == ENTER:
                return max(0, len(mop.args) - max_reg_args)
    return 0


def expand_function(mfunc: MFunction, convention: RegConvention,
                    fmt: InstructionFormat,
                    allocation: AllocationResult) -> None:
    """Expand pseudos and patch frame offsets in place."""
    saved = list(allocation.used_callee_saved)
    if mfunc.has_calls:
        saved = [convention.ra] + saved
    frame = _FrameInfo(mfunc, saved,
                       count_stack_params(mfunc, convention.max_reg_args))
    sp = Reg(convention.sp)
    btr_cursor = [0]

    def next_btr() -> Btr:
        window = min(fmt.config.n_btrs, _BTR_WINDOW)
        index = btr_cursor[0] % window
        btr_cursor[0] += 1
        return Btr(index)

    def patch_marker(mop: MOp) -> None:
        if mop.target is None:
            return
        if mop.target.startswith("alloca:"):
            index = int(mop.target.split(":")[1])
            mop.src2 = Lit(frame.alloca_offsets[index])
            mop.target = None
        elif mop.target.startswith("spill:"):
            slot = int(mop.target.split(":")[1])
            mop.src2 = Lit(frame.spill_base + slot)
            mop.target = None

    def move_into(dest: Reg, operand, out: List[MOp]) -> None:
        if isinstance(operand, Lit):
            mnemonic = "MOVE" if fmt.literal_fits(operand.value) else "MOVI"
            out.append(MOp(mnemonic, dest1=dest, src1=operand))
        elif isinstance(operand, SpillRef):
            out.append(MOp("LW", dest1=dest, src1=sp,
                           src2=Lit(frame.spill_base + operand.slot)))
        elif isinstance(operand, Reg):
            if operand.index != dest.index:
                out.append(MOp("MOVE", dest1=dest, src1=operand))
        else:
            raise ScheduleError(f"unexpected operand {operand!r} at expansion")

    def expand_enter(mop: MOp, out: List[MOp]) -> None:
        if frame.size:
            out.append(MOp("SUB", dest1=sp, src1=sp, src2=Lit(frame.size)))
        for reg, offset in frame.save_offsets.items():
            out.append(MOp("SW", dest1=Reg(reg), src1=sp, src2=Lit(offset)))
        # Order matters: spill-stores read pristine incoming argument
        # registers first; the parallel copies then move reg-params out
        # of the argument registers; only after that may stack-passed
        # params be loaded into registers that might alias the incoming
        # argument registers.
        reg_pairs: List[Tuple[int, int]] = []
        stack_loads: List[MOp] = []
        scratch = Reg(convention.scratch[0])
        for position, param in enumerate(mop.args):
            if position >= convention.max_reg_args:
                # Stack-passed parameter: the caller left it in this
                # frame's incoming area.
                offset = frame.incoming_base + position \
                    - convention.max_reg_args
                if isinstance(param, SpillRef):
                    stack_loads.append(MOp("LW", dest1=scratch, src1=sp,
                                           src2=Lit(offset)))
                    stack_loads.append(MOp(
                        "SW", dest1=scratch, src1=sp,
                        src2=Lit(frame.spill_base + param.slot)))
                elif isinstance(param, Reg):
                    stack_loads.append(MOp("LW", dest1=param, src1=sp,
                                           src2=Lit(offset)))
                else:
                    raise ScheduleError(f"unallocated parameter {param!r}")
                continue
            arg_reg = convention.arg_regs[position]
            if isinstance(param, SpillRef):
                out.append(MOp("SW", dest1=Reg(arg_reg), src1=sp,
                               src2=Lit(frame.spill_base + param.slot)))
            elif isinstance(param, Reg):
                reg_pairs.append((param.index, arg_reg))
            else:
                raise ScheduleError(f"unallocated parameter {param!r}")
        for dst, src in sequentialize_parallel_copies(
                reg_pairs, convention.scratch[0]):
            out.append(MOp("MOVE", dest1=Reg(dst), src1=Reg(src)))
        out.extend(stack_loads)

    def expand_call(mop: MOp, out: List[MOp]) -> None:
        n_extra = max(0, len(mop.args) - convention.max_reg_args)
        scratch = Reg(convention.scratch[0])
        for extra, argument in enumerate(mop.args[convention.max_reg_args:]):
            # Below the current stack pointer: the callee's prologue will
            # fold this region into its own frame.
            offset = Lit(-n_extra + extra)
            if isinstance(argument, Reg):
                out.append(MOp("SW", dest1=argument, src1=sp, src2=offset))
            else:
                move_into(scratch, argument, out)
                out.append(MOp("SW", dest1=scratch, src1=sp, src2=offset))
        for position, argument in enumerate(
                mop.args[:convention.max_reg_args]):
            move_into(Reg(convention.arg_regs[position]), argument, out)
        btr = next_btr()
        out.append(MOp("PBR", dest1=btr, src1=Lit(0), target=mop.target))
        out.append(MOp("BRL", dest1=Reg(convention.ra), src1=btr))
        if mop.dest1 is not None:
            if not isinstance(mop.dest1, Reg):
                raise ScheduleError(f"unallocated call result {mop.dest1!r}")
            out.append(MOp("MOVE", dest1=mop.dest1,
                           src1=Reg(convention.rv)))

    def expand_ret(mop: MOp, out: List[MOp]) -> None:
        if mop.src1 is not None:
            move_into(Reg(convention.rv), mop.src1, out)
        for reg, offset in frame.save_offsets.items():
            out.append(MOp("LW", dest1=Reg(reg), src1=sp, src2=Lit(offset)))
        if frame.size:
            out.append(MOp("ADD", dest1=sp, src1=sp, src2=Lit(frame.size)))
        btr = next_btr()
        out.append(MOp("MOVGBP", dest1=btr, src1=Reg(convention.ra)))
        out.append(MOp("BR", src1=btr))

    for block in mfunc.blocks:
        expanded: List[MOp] = []
        for mop in block.mops:
            patch_marker(mop)
            if mop.mnemonic == ENTER:
                expand_enter(mop, expanded)
            elif mop.mnemonic == CALL:
                expand_call(mop, expanded)
            elif mop.mnemonic == RET:
                expand_ret(mop, expanded)
            else:
                expanded.append(mop)
        block.mops = expanded
