"""The complete EPIC compilation pipeline.

``compile_ir_to_epic`` takes an IR module and a machine configuration
and produces an assembled :class:`~repro.isa.Program` (plus the
intermediate assembly text, for inspection), retargeting itself entirely
from the configuration — the property the paper's §4 toolchain is built
around ("the compiler is able to support our design, without the need
for recompiling the compiler itself").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.asm import assemble
from repro.backend.emit import render_program
from repro.backend.expand import expand_function
from repro.backend.isel import EpicISel
from repro.backend.runtime import RUNTIME_SOURCE
from repro.config import AluFeature, MachineConfig
from repro.errors import ScheduleError
from repro.ir import instructions as ir
from repro.ir.module import Module
from repro.ir.verify import verify_module
from repro.isa.bundle import Program
from repro.isa.encoding import InstructionFormat
from repro.mdes import Mdes
from repro.sched.convention import epic_convention
from repro.sched.listsched import schedule_function
from repro.sched.regalloc import allocate_registers


@dataclass
class EpicCompilation:
    """Result of one compilation: program plus introspection artefacts."""

    program: Program
    assembly: str
    config: MachineConfig
    symbols: Dict[str, int]

    @property
    def code_bundles(self) -> int:
        return len(self.program)


def _module_uses_div(module: Module) -> bool:
    for function in module.functions.values():
        for instr in function.instructions():
            if isinstance(instr, ir.BinOp) and instr.op in ("div", "rem"):
                return True
    return False


def link_runtime(module: Module, optimize: bool = True) -> None:
    """Merge the division runtime into ``module`` (idempotent)."""
    if "__divsi3" in module.functions:
        return
    from repro.lang.compile import compile_minic  # local: avoid cycle

    runtime = compile_minic(RUNTIME_SOURCE, unroll=False, optimize=optimize)
    for name, function in runtime.functions.items():
        if name not in module.functions:
            module.functions[name] = function


def compile_ir_to_epic(module: Module, config: MachineConfig,
                       if_convert: bool = True,
                       entry: str = "main") -> EpicCompilation:
    """Compile an IR module for one EPIC configuration."""
    if entry not in module.functions:
        raise ScheduleError(f"entry function {entry!r} not found")
    if not config.has_feature(AluFeature.DIVIDE) and _module_uses_div(module):
        link_runtime(module)
    verify_module(module)

    fmt = InstructionFormat(config)
    mdes = Mdes(config, fmt.table)
    convention = epic_convention(config.n_gprs)
    addresses = module.layout_globals()

    scheduled = []
    for function in module.functions.values():
        mfunc = EpicISel(function, module, config, fmt, addresses,
                         if_convert=if_convert).run()
        allocation = allocate_registers(mfunc, convention)
        expand_function(mfunc, convention, fmt, allocation)
        scheduled.extend(schedule_function(mfunc, mdes))

    assembly = render_program(module, scheduled, config.mask, entry)
    program = assemble(assembly, config)

    # The assembler lays data out in emission order; confirm it matches
    # the layout instruction selection baked into literal addresses.
    for name, address in addresses.items():
        if program.symbols.get(name) != address:
            raise ScheduleError(
                f"data layout mismatch for {name!r}: "
                f"{program.symbols.get(name)} != {address}"
            )
    return EpicCompilation(
        program=program,
        assembly=assembly,
        config=config,
        symbols=dict(program.symbols),
    )


def compile_minic_to_epic(source: str, config: MachineConfig,
                          unroll: bool = True, optimize: bool = True,
                          if_convert: bool = True) -> EpicCompilation:
    """Convenience: MiniC source -> assembled EPIC program."""
    from repro.lang.compile import compile_minic  # local: avoid cycle

    module = compile_minic(source, unroll=unroll, optimize=optimize)
    return compile_ir_to_epic(module, config, if_convert=if_convert)
