"""Compiler runtime library (MiniC source).

Configurations whose ALUs drop the divide feature (paper §3.3: "ALUs do
not need to support division if this operation is not required"), and
the SA-110 baseline — whose ARM-style ISA has no divide instruction at
all — expand ``/`` and ``%`` into calls to these shift-and-subtract
routines, exactly as an ARM C compiler links ``__divsi3``.
"""

RUNTIME_FUNCTIONS = ("__uge", "__udivmod_q", "__udivmod_r",
                     "__divsi3", "__modsi3")

RUNTIME_SOURCE = """
// Unsigned a >= b over full 32-bit words: compare the top 31 bits (which
// are non-negative after a logical shift) and break ties on the low bit.
int __uge(int a, int b) {
  int ah; int bh;
  ah = a >>> 1;
  bh = b >>> 1;
  if (ah > bh) { return 1; }
  if (ah < bh) { return 0; }
  return (a & 1) >= (b & 1);
}

// Unsigned 32-bit restoring division (quotient).
int __udivmod_q(int n, int d) {
  int q;
  int r;
  int i;
  q = 0;
  r = 0;
  for (i = 31; i >= 0; i -= 1) {
    r = (r << 1) | ((n >>> i) & 1);
    if (__uge(r, d)) {
      r = r - d;
      q = q | (1 << i);
    }
  }
  return q;
}

// Unsigned 32-bit restoring division (remainder).
int __udivmod_r(int n, int d) {
  int r;
  int i;
  r = 0;
  for (i = 31; i >= 0; i -= 1) {
    r = (r << 1) | ((n >>> i) & 1);
    if (__uge(r, d)) {
      r = r - d;
    }
  }
  return r;
}

// Signed division truncating toward zero (C semantics).
int __divsi3(int a, int b) {
  int na; int nb; int q;
  na = a; nb = b;
  if (na < 0) { na = -na; }
  if (nb < 0) { nb = -nb; }
  q = __udivmod_q(na, nb);
  if ((a < 0) != (b < 0)) { q = -q; }
  return q;
}

// Signed remainder; the sign follows the dividend (C semantics).
int __modsi3(int a, int b) {
  int na; int nb; int r;
  na = a; nb = b;
  if (na < 0) { na = -na; }
  if (nb < 0) { nb = -nb; }
  r = __udivmod_r(na, nb);
  if (a < 0) { r = -r; }
  return r;
}
"""
