"""EPIC code generation (elcor's role, §4.1).

"The elcor module will then statically schedule the instructions by
performing dependence analysis and resource conflict avoidance."

Pipeline stages:

1. **Instruction selection** (:mod:`repro.backend.isel`): IR -> machine
   ops with virtual registers, including if-conversion of small diamonds
   into predicated code (paper §2's "predicated instructions transform
   control dependence to data dependence") and fusion of compares into
   CMPP/branch pairs.
2. **Register allocation** (:mod:`repro.sched.regalloc`): linear scan
   over the configured register file, with calling-convention pools and
   spilling.
3. **Pseudo-op expansion** (:mod:`repro.backend.expand`): calls,
   returns, prologue/epilogue and frame construction.
4. **Scheduling** (:mod:`repro.sched`): dependence DAG + resource-
   constrained list scheduling into issue groups, driven by the machine
   description (mdes) so compile-time assumptions equal hardware
   behaviour.
5. **Emission** (:mod:`repro.backend.emit`): bundles -> assembly text,
   consumed by the configuration-aware assembler.
"""

__all__ = ["EpicCompilation", "compile_ir_to_epic", "compile_minic_to_epic"]


def __getattr__(name):
    # Lazy re-exports (PEP 562): repro.sched and repro.backend import
    # each other's submodules; resolving the pipeline entry points on
    # first use keeps the package import graph acyclic.
    if name in __all__:
        from repro.backend import epic
        return getattr(epic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
