"""Compile-and-simulate drivers with output validation.

Every run cross-checks the simulator's architectural outputs (the
workload's named global arrays and the checksum return value) against
the golden reference before its cycle count is trusted — a number from
a miscomputing machine is worthless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.baseline import Sa110Simulator, compile_minic_to_armlet
from repro.backend import compile_minic_to_epic
from repro.config import MachineConfig
from repro.config.presets import SA110_CLOCK_MHZ
from repro.core import EpicProcessor
from repro.errors import CycleLimitExceeded, SimulationError
from repro.fpga import estimate_clock_mhz
from repro.workloads import WorkloadSpec

#: Run outcomes surfaced on :class:`BenchmarkRun`.
OUTCOME_OK = "ok"
OUTCOME_CYCLE_LIMIT = "cycle-limit-exceeded"


@dataclass
class BenchmarkRun:
    """One (workload, machine) measurement.

    ``outcome`` is :data:`OUTCOME_OK` for a validated run;
    :data:`OUTCOME_CYCLE_LIMIT` marks a run that blew its cycle budget
    (only produced when the caller opts into ``cycle_limit_ok``), whose
    ``cycles`` then holds the budget at which it was cut off and whose
    outputs were never validated.
    """

    workload: str
    machine: str
    cycles: int
    clock_mhz: float
    extra: Dict[str, float] = field(default_factory=dict)
    outcome: str = OUTCOME_OK

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK

    @property
    def time_seconds(self) -> float:
        """Execution time of a *completed* run.

        A run that did not finish (``outcome`` != :data:`OUTCOME_OK`)
        has no execution time — its ``cycles`` field holds the budget it
        was cut off at, and converting that into milliseconds would turn
        a non-measurement into a plausible-looking figure.  Such runs
        raise instead of lying.
        """
        if self.outcome != OUTCOME_OK:
            raise SimulationError(
                f"{self.workload} on {self.machine}: outcome is "
                f"{self.outcome!r}; the {self.cycles}-cycle figure is a "
                "budget, not a measurement"
            )
        return self.cycles / (self.clock_mhz * 1e6)

    def __str__(self) -> str:
        if self.outcome != OUTCOME_OK:
            return (
                f"{self.workload} on {self.machine}: {self.outcome} "
                f"after a {self.cycles}-cycle budget (no measurement)"
            )
        return (
            f"{self.workload} on {self.machine}: {self.cycles} cycles "
            f"@ {self.clock_mhz} MHz = {self.time_seconds * 1e3:.3f} ms"
        )


def check_outputs(name: str, machine: str, spec: WorkloadSpec,
                   read_global, return_value: Optional[int]) -> None:
    for global_name, expected in spec.expected.items():
        got = read_global(global_name, len(expected))
        if got != expected:
            raise SimulationError(
                f"{name} on {machine}: output {global_name!r} does not "
                "match the golden reference"
            )
    if spec.expected_return is not None and return_value is not None:
        if (return_value & 0xFFFFFFFF) != spec.expected_return:
            raise SimulationError(
                f"{name} on {machine}: checksum {return_value:#x} != "
                f"{spec.expected_return:#x}"
            )


def run_on_epic(spec: WorkloadSpec, config: MachineConfig,
                validate: bool = True,
                max_cycles: int = 200_000_000,
                cycle_limit_ok: bool = False,
                engine: str = "auto") -> BenchmarkRun:
    """Compile and run one workload on one EPIC configuration.

    A run that exhausts ``max_cycles`` raises
    :class:`~repro.errors.CycleLimitExceeded`; with ``cycle_limit_ok``
    it is instead surfaced as a :class:`BenchmarkRun` whose ``outcome``
    is :data:`OUTCOME_CYCLE_LIMIT` (its cycle count is the budget, not a
    measurement, and its outputs are unvalidated).

    ``engine`` selects the simulator path: ``"auto"`` lets the core
    pick the fast path when eligible, ``"fast"`` / ``"reference"`` /
    ``"trace"`` force one.  All paths are cycle-identical by contract,
    so the choice can never change the measurement — only the host
    time.
    """
    if engine not in ("auto", "fast", "reference", "trace"):
        raise SimulationError(
            f"unknown engine {engine!r}: expected one of auto, fast, "
            "reference, trace"
        )
    compilation = compile_minic_to_epic(spec.source, config)
    cpu = EpicProcessor(config, compilation.program,
                        mem_words=spec.mem_words)
    machine = f"EPIC-{config.n_alus}ALU"
    try:
        result = cpu.run(max_cycles=max_cycles, engine=engine)
    except CycleLimitExceeded as error:
        if not cycle_limit_ok:
            raise
        return BenchmarkRun(
            workload=spec.name,
            machine=machine,
            cycles=error.limit,
            clock_mhz=estimate_clock_mhz(config),
            extra={},
            outcome=OUTCOME_CYCLE_LIMIT,
        )
    if validate:
        def read_global(name: str, count: int):
            base = compilation.symbols[name]
            return [cpu.memory.read(base + i) for i in range(count)]

        check_outputs(spec.name, machine, spec, read_global,
                       cpu.gpr.read(2))
    stats = cpu.stats
    return BenchmarkRun(
        workload=spec.name,
        machine=machine,
        cycles=result.cycles,
        clock_mhz=estimate_clock_mhz(config),
        extra={
            "ilp": stats.ilp,
            "ops": float(stats.ops_executed),
            "port_stalls": float(stats.port_stall_cycles),
            "branch_bubbles": float(stats.branch_bubble_cycles),
            "squashed": float(stats.ops_squashed),
        },
    )


def run_on_baseline(spec: WorkloadSpec, validate: bool = True,
                    max_instructions: int = 500_000_000) -> BenchmarkRun:
    """Compile and run one workload on the SA-110 baseline."""
    compilation = compile_minic_to_armlet(spec.source)
    simulator = Sa110Simulator(
        compilation.program, compilation.labels, compilation.data,
        mem_words=spec.mem_words,
    )
    result = simulator.run(max_instructions=max_instructions)
    if validate:
        def read_global(name: str, count: int):
            base = compilation.symbols[name]
            return simulator.memory[base:base + count]

        check_outputs(spec.name, "SA-110", spec, read_global,
                       result.return_value)
    return BenchmarkRun(
        workload=spec.name,
        machine="SA-110",
        cycles=result.cycles,
        clock_mhz=SA110_CLOCK_MHZ,
        extra={
            "instructions": float(result.stats.instructions),
            "load_use_stalls": float(result.stats.load_use_stalls),
            "branches_taken": float(result.stats.branches_taken),
        },
    )
