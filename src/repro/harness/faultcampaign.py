"""Seeded SEU fault-injection campaigns over the paper's workloads.

A *campaign* fans N independently-drawn faults across one (workload,
machine) pair, classifies every run with the lockstep checker, and
aggregates the outcome counts into a per-benchmark vulnerability table
— the reliability analogue of the harness's Table 1.

Determinism is a hard requirement (regression tests diff whole outcome
tables): fault generation uses the repo's own
:class:`~repro.workloads.XorShift32` generator rather than
:mod:`random`, so a (seed, N, machine, workload) quadruple maps to a
byte-identical report on every platform and Python version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.reliability import (
    FaultSpec,
    InjectionResult,
    LockstepChecker,
    MODEL_SEU,
    MODEL_STUCK0,
    MODEL_STUCK1,
    Outcome,
    SPACE_BTR,
    SPACE_GPR,
    SPACE_IFETCH,
    SPACE_MEM,
    SPACE_PRED,
)
from repro.workloads import WorkloadSpec
from repro.workloads.common import XorShift32

#: Default target mix: every architecturally visible state the injector
#: models.  Memory faults are drawn over the *initialised data image*
#: (globals and workload inputs) — the interesting words — rather than
#: the whole 256 KiB array, most of which no run ever touches.
DEFAULT_SPACES: Tuple[str, ...] = (
    SPACE_GPR, SPACE_PRED, SPACE_BTR, SPACE_MEM, SPACE_IFETCH,
)

#: One fault in eight is a stuck-at (half of them stuck-at-1); the rest
#: are transient single-event upsets.
_STUCK_DIE = 8


def generate_faults(checker: LockstepChecker, n: int, seed: int,
                    spaces: Sequence[str] = DEFAULT_SPACES) -> List[FaultSpec]:
    """Draw ``n`` fault specs for ``checker``'s machine, deterministically.

    All dimensions (space, index, bit, cycle, model) come from one
    :class:`XorShift32` stream seeded with ``seed``, so the same seed
    reproduces the same campaign bit-for-bit.
    """
    if n < 0:
        raise ValueError("fault count must be non-negative")
    if not spaces:
        raise ValueError("at least one fault space is required")
    if not seed:
        # XorShift32 cannot hold state 0; silently substituting another
        # seed would make two nominally different campaigns identical.
        raise ValueError("seed must be non-zero")
    config = checker.config
    program = checker.compilation.program
    width = config.datapath_width
    issue_width = config.issue_width
    data_words = max(1, len(program.data))
    # Instruction-word width at this configuration (64 at paper defaults).
    from repro.isa.encoding import InstructionFormat

    instruction_bits = InstructionFormat(config).instruction_bits
    btr_bits = max(1, (len(program.bundles) - 1).bit_length())
    cycles = max(1, checker.reference_cycles)

    rng = XorShift32(seed)
    faults: List[FaultSpec] = []
    for _ in range(n):
        space = spaces[rng.below(len(spaces))]
        die = rng.below(_STUCK_DIE)
        if die == 0:
            model = MODEL_STUCK0
        elif die == 1:
            model = MODEL_STUCK1
        else:
            model = MODEL_SEU
        cycle = rng.below(cycles)
        if space == SPACE_GPR:
            index, bit = rng.below(config.n_gprs), rng.below(width)
        elif space == SPACE_PRED:
            index, bit = rng.below(config.n_preds), 0
        elif space == SPACE_BTR:
            index, bit = rng.below(config.n_btrs), rng.below(btr_bits)
        elif space == SPACE_MEM:
            index, bit = rng.below(data_words), rng.below(width)
        else:  # ifetch
            index, bit = rng.below(issue_width), rng.below(instruction_bits)
        faults.append(FaultSpec(space=space, index=index, bit=bit,
                                cycle=cycle, model=model))
    return faults


@dataclass
class CampaignReport:
    """Aggregated outcome of one fault-injection campaign."""

    workload: str
    machine: str
    n: int
    seed: int
    reference_cycles: int
    counts: Dict[str, int]
    results: List[InjectionResult] = field(default_factory=list)
    #: Non-deterministic measurement context (wall time, faults/sec,
    #: checkpoint fast-forward counters).  Deliberately excluded from
    #: :func:`campaign_payload` — the JSON report is diffed byte-for-
    #: byte across serial/parallel/checkpointed runs.
    timing: Optional[Dict[str, object]] = None

    @property
    def classified(self) -> int:
        """Number of injections that actually produced an outcome.

        Quarantined or crashed serve jobs can leave a report with fewer
        than ``n`` classified results; rates are computed over this
        denominator, never over the nominal ``n``, so missing results
        cannot silently deflate them.
        """
        return sum(self.counts.values())

    def _rate(self, outcome: Outcome) -> float:
        classified = self.classified
        return (self.counts.get(outcome.value, 0) / classified
                if classified else 0.0)

    @property
    def sdc_rate(self) -> float:
        return self._rate(Outcome.SDC)

    @property
    def detected_rate(self) -> float:
        return self._rate(Outcome.DETECTED)

    @property
    def masked_rate(self) -> float:
        return self._rate(Outcome.MASKED)

    @property
    def hung_rate(self) -> float:
        return self._rate(Outcome.HUNG)

    def outcome_table(self) -> List[Tuple[str, str]]:
        """Per-fault (fault, outcome) pairs — the determinism fingerprint."""
        return [
            (result.fault.describe() if result.fault else "none",
             result.outcome.value)
            for result in self.results
        ]


def result_payload(result: InjectionResult) -> dict:
    """Lossless JSON form of one classified injection."""
    return {
        "fault": result.fault.describe() if result.fault else None,
        "fault_spec": (
            {
                "space": result.fault.space,
                "index": result.fault.index,
                "bit": result.fault.bit,
                "cycle": result.fault.cycle,
                "model": result.fault.model,
            }
            if result.fault else None
        ),
        "outcome": result.outcome.value,
        "detail": result.detail,
        "cycles": result.cycles,
        "trap_cause": result.trap_cause,
    }


def result_from_payload(payload: dict) -> InjectionResult:
    """Rebuild an :class:`InjectionResult` from :func:`result_payload`."""
    fault_spec = payload.get("fault_spec")
    fault = FaultSpec(**fault_spec) if fault_spec else None
    return InjectionResult(
        fault=fault,
        outcome=Outcome(payload["outcome"]),
        detail=payload.get("detail", ""),
        cycles=payload["cycles"],
        trap_cause=payload.get("trap_cause"),
    )


def report_from_results(spec: WorkloadSpec, config: MachineConfig,
                        n: int, seed: int, reference_cycles: int,
                        results: Sequence[InjectionResult]
                        ) -> CampaignReport:
    """Assemble a :class:`CampaignReport` with recomputed counts."""
    counts = {outcome.value: 0 for outcome in Outcome}
    for result in results:
        counts[result.outcome.value] += 1
    return CampaignReport(
        workload=spec.name,
        machine=f"EPIC-{config.n_alus}ALU",
        n=n,
        seed=seed,
        reference_cycles=reference_cycles,
        counts=counts,
        results=list(results),
    )


def run_campaign(spec: WorkloadSpec, config: MachineConfig,
                 n: int, seed: int,
                 spaces: Sequence[str] = DEFAULT_SPACES,
                 watchdog_factor: float = 4.0,
                 checker: Optional[LockstepChecker] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 on_result: Optional[
                     Callable[[InjectionResult], None]] = None,
                 executor=None,
                 cache=None,
                 shards: Optional[int] = None,
                 checkpoints: Optional[bool] = None,
                 checkpoint_interval: Optional[int] = None,
                 checkpoint_store=None,
                 engine: str = "auto") -> CampaignReport:
    """Run one seeded campaign of ``n`` injections and aggregate it.

    Pass a pre-built ``checker`` to amortise compilation and the golden
    run across campaigns on the same (workload, machine) pair.

    ``on_result`` is called with every classified
    :class:`~repro.reliability.InjectionResult` as it lands — per-point
    progress for callers who would otherwise watch a silent campaign.

    Passing ``executor`` and/or ``cache`` routes the campaign through
    :mod:`repro.serve`: the fault list is sharded into contiguous
    slices (``shards``, defaulting to the executor's worker count) that
    run in parallel and are merged **in fault-index order**, so the
    report is byte-identical to the serial one.  Fault generation stays
    seed-driven and happens inside each worker from ``(n, seed)``,
    never from scheduling state.  With an executor, ``checker`` and
    ``progress`` callbacks that capture local state are not forwarded
    to workers; ``on_result`` still fires in the parent as shards
    complete (shard order, not global order).

    ``checkpoints`` toggles golden checkpoint fast-forwarding (see
    :mod:`repro.core.snapshot`); ``None`` defers to the
    ``REPRO_CHECKPOINTS`` environment default.  It is a *perf* knob:
    the report is byte-identical either way, which is also why it never
    enters the serve job digests.  The report's ``timing`` field
    carries wall-clock throughput and fast-forward counters.

    ``engine`` selects the classification path: ``"auto"`` runs every
    fault through the scalar checker; ``"vector"`` rides the batched
    vector engine (:mod:`repro.core.vector`) and retires inexact lanes
    to the scalar checker.  Like ``checkpoints`` it is a pure perf
    knob — outcome tables are byte-identical either way.
    """
    import time as _time

    if engine not in ("auto", "vector"):
        raise ValueError(
            f"unknown campaign engine {engine!r}: expected 'auto' or "
            f"'vector'")
    started = _time.perf_counter()
    if executor is not None or cache is not None:
        from repro.serve import (
            campaign_job, raise_for_failures, run_jobs,
        )
        from repro.serve.jobspec import shard_campaign
        from repro.serve.worker import campaign_checker

        whole = campaign_job(spec, config, n, seed, spaces=spaces,
                             watchdog_factor=watchdog_factor,
                             engine=engine)
        want = shards if shards is not None \
            else getattr(executor, "jobs", 1)
        jobs = shard_campaign(whole, want) if want > 1 else [whole]
        if cache is None:
            # Warm the process-level checker memo before dispatch: a
            # forking PoolExecutor's workers inherit the compiled
            # checker (and its golden checkpoint stream) instead of
            # each rebuilding it.  With a result cache the jobs may
            # never run at all, so skip the warm-up.
            campaign_checker(whole).prepare_checkpoints()

        def handle(outcome) -> None:
            if not outcome.ok:
                return
            if progress is not None:
                progress(f"{spec.name}: shard "
                         f"[{outcome.payload['fault_offset']}:+"
                         f"{len(outcome.payload['outcomes'])}] done")
            if on_result is not None:
                for entry in outcome.payload["outcomes"]:
                    on_result(result_from_payload(entry))

        outcomes = run_jobs(jobs, executor=executor, cache=cache,
                            on_result=handle)
        raise_for_failures(outcomes)
        reference_cycles = outcomes[0].payload["reference_cycles"]
        results: List[InjectionResult] = []
        for outcome in outcomes:  # input order == fault-index order
            results.extend(result_from_payload(entry)
                           for entry in outcome.payload["outcomes"])
        report = report_from_results(spec, config, n, seed,
                                     reference_cycles, results)
        elapsed = _time.perf_counter() - started
        shard_metas = [outcome.meta for outcome in outcomes
                       if outcome.meta and "faults_run" in outcome.meta]
        report.timing = {
            "engine": engine,
            "elapsed_s": elapsed,
            "faults_per_s": n / elapsed if elapsed > 0 else 0.0,
            "checkpointed": any(meta.get("checkpointed")
                                for meta in shard_metas),
            "prefix_cycles_skipped": sum(
                meta.get("ff_cycles_skipped", 0) for meta in shard_metas),
            "convergence_cuts": sum(
                meta.get("ff_convergence_cuts", 0) for meta in shard_metas),
        }
        if engine == "vector":
            lanes_retired: Dict[str, int] = {}
            for meta in shard_metas:
                for reason, count in meta.get("lanes_retired", {}).items():
                    lanes_retired[reason] = \
                        lanes_retired.get(reason, 0) + count
            lane_cycles = sum(meta.get("vector_lane_cycles", 0)
                              for meta in shard_metas)
            lane_capacity = sum(meta.get("vector_lane_capacity", 0)
                                for meta in shard_metas)
            wasted = sum(meta.get("vector_wasted_cycles", 0)
                         for meta in shard_metas)
            downgrade = next(
                (meta["engine_downgrade_reason"] for meta in shard_metas
                 if meta.get("engine_downgrade_reason")), None)
            report.timing.update({
                "vector_faults": sum(meta.get("vector_faults", 0)
                                     for meta in shard_metas),
                "scalar_faults": sum(meta.get("vector_scalar_faults", 0)
                                     for meta in shard_metas),
                "vector_cuts": sum(meta.get("vector_cuts", 0)
                                   for meta in shard_metas),
                "vector_jumps": sum(meta.get("vector_jumps", 0)
                                    for meta in shard_metas),
                "lanes_retired": lanes_retired,
                # Only cycles spent on lanes the engine classified count
                # as occupancy; retired-lane cycles are wasted work.
                "vector_occupancy": ((lane_cycles - wasted) / lane_capacity
                                     if lane_capacity else 0.0),
                "wasted_retired_cycles": (wasted / lane_capacity
                                          if lane_capacity else 0.0),
                "rewalk_lanes": sum(meta.get("rewalk_lanes", 0)
                                    for meta in shard_metas),
                "rewalk_groups": sum(meta.get("rewalk_groups", 0)
                                     for meta in shard_metas),
                "rewalk_lane_cycles": sum(meta.get("rewalk_lane_cycles", 0)
                                          for meta in shard_metas),
                "engine_downgrade_reason": downgrade,
                "vector_numpy": any(meta.get("vector_numpy")
                                    for meta in shard_metas),
            })
        return report

    if checker is None:
        if checkpoints is None:
            from repro.serve.worker import checkpoints_enabled

            checkpoints = checkpoints_enabled()
        checker = LockstepChecker(spec, config,
                                  watchdog_factor=watchdog_factor,
                                  checkpoints=checkpoints,
                                  checkpoint_interval=checkpoint_interval,
                                  checkpoint_store=checkpoint_store)
    elif checkpoints is not None:
        checker.checkpoints = checkpoints
    ff_before = checker.fastforward_stats()
    faults = generate_faults(checker, n, seed, spaces)
    vstats: Optional[Dict[str, object]] = None
    if engine == "vector":
        results, vstats = checker.run_batch(faults)
        for number, result in enumerate(results, start=1):
            if on_result is not None:
                on_result(result)
            if progress is not None and number % 25 == 0:
                progress(f"{spec.name}: {number}/{n} injections")
    else:
        results = []
        for number, fault in enumerate(faults, start=1):
            result = checker.run_one(fault)
            results.append(result)
            if on_result is not None:
                on_result(result)
            if progress is not None and number % 25 == 0:
                progress(f"{spec.name}: {number}/{n} injections")
    report = report_from_results(spec, config, n, seed,
                                 checker.reference_cycles, results)
    elapsed = _time.perf_counter() - started
    ff_after = checker.fastforward_stats()
    report.timing = {
        "engine": engine,
        "elapsed_s": elapsed,
        "faults_per_s": n / elapsed if elapsed > 0 else 0.0,
        "checkpointed": bool(checker.checkpoints),
        "prefix_cycles_skipped":
            ff_after["cycles_skipped"] - ff_before["cycles_skipped"],
        "convergence_cuts":
            ff_after["convergence_cuts"] - ff_before["convergence_cuts"],
    }
    if vstats is not None:
        lane_capacity = vstats["lane_capacity"]
        wasted = vstats["wasted_lane_cycles"]
        useful = vstats["lane_cycles"] - wasted
        report.timing.update({
            "vector_faults": vstats["vector_faults"],
            "scalar_faults": vstats["scalar_faults"],
            "vector_cuts": vstats["cuts"],
            "vector_jumps": vstats["jumps"],
            "lanes_retired": dict(vstats["retired"]),
            # Occupancy counts only lanes that the engine classified:
            # cycles burnt by lanes that later retired to the scalar
            # checker are wasted work, reported under their own key so
            # utilisation is not overstated.
            "vector_occupancy": (useful / lane_capacity
                                 if lane_capacity else 0.0),
            "wasted_retired_cycles": (wasted / lane_capacity
                                      if lane_capacity else 0.0),
            "rewalk_lanes": vstats["rewalk_lanes"],
            "rewalk_groups": vstats["rewalk_groups"],
            "rewalk_lane_cycles": vstats["rewalk_lane_cycles"],
            "engine_downgrade_reason": vstats["engine_downgrade_reason"],
            "vector_numpy": vstats["numpy"],
        })
    return report


def measure_campaign_throughput(
        spec: WorkloadSpec, config: MachineConfig, n: int, seed: int,
        spaces: Sequence[str] = DEFAULT_SPACES,
        watchdog_factor: float = 4.0,
        checkpoint_interval: Optional[int] = None,
        checkpoint_store=None,
        progress: Optional[Callable[[str], None]] = None,
        ) -> Tuple[CampaignReport, Dict[str, object]]:
    """Run one campaign twice — from zero, then checkpointed — and
    compare.

    Both passes share one :class:`LockstepChecker` (same compile,
    golden model and reference run), differing only in the
    ``checkpoints`` toggle, so the measured ratio isolates the
    fast-forward machinery.  The two reports must be byte-identical
    (:func:`campaign_payload` forms are diffed; a mismatch raises) —
    the speedup is only meaningful if the answers agree.

    Returns the checkpointed report plus a timing record with both
    passes' timings and the ``speedup`` ratio.
    """
    from repro.errors import SimulationError

    checker = LockstepChecker(spec, config,
                              watchdog_factor=watchdog_factor,
                              checkpoints=False,
                              checkpoint_interval=checkpoint_interval,
                              checkpoint_store=checkpoint_store)
    baseline = run_campaign(spec, config, n, seed, spaces=spaces,
                            watchdog_factor=watchdog_factor,
                            checker=checker, progress=progress,
                            checkpoints=False)
    # Capture the golden stream outside the timed region: it is a
    # one-time cost per (workload, machine), amortised across shards
    # and processes by the CheckpointStore, so steady-state campaign
    # throughput is the honest comparison.
    checker.checkpoints = True
    checker.prepare_checkpoints()
    fastrun = run_campaign(spec, config, n, seed, spaces=spaces,
                           watchdog_factor=watchdog_factor,
                           checker=checker, progress=progress,
                           checkpoints=True)
    if campaign_payload([baseline]) != campaign_payload([fastrun]):
        raise SimulationError(
            f"checkpointed campaign diverged from the from-zero "
            f"campaign on {spec.name}/{config.n_alus} ALUs — the "
            f"fast-forward machinery is not exact")
    from_zero_s = baseline.timing["elapsed_s"]
    checkpointed_s = fastrun.timing["elapsed_s"]
    timing = {
        "workload": fastrun.workload,
        "machine": fastrun.machine,
        "n": n,
        "seed": seed,
        "from_zero": dict(baseline.timing),
        "checkpointed": dict(fastrun.timing),
        "speedup": (from_zero_s / checkpointed_s
                    if checkpointed_s > 0 else float("inf")),
    }
    return fastrun, timing


def measure_vector_throughput(
        spec: WorkloadSpec, config: MachineConfig, n: int, seed: int,
        spaces: Sequence[str] = DEFAULT_SPACES,
        watchdog_factor: float = 4.0,
        checkpoint_interval: Optional[int] = None,
        checkpoint_store=None,
        progress: Optional[Callable[[str], None]] = None,
        repeat: int = 1,
        ) -> Tuple[CampaignReport, Dict[str, object]]:
    """Run one campaign twice — scalar checkpointed, then vector — and
    compare.

    Both passes share one :class:`LockstepChecker` with checkpointing
    on (the PR 5 baseline), differing only in the classification
    engine, so the measured ratio isolates the batched vector walk.
    The two reports must be byte-identical (:func:`campaign_payload`
    forms are diffed; a mismatch raises).

    ``repeat`` reruns each pass that many times and keeps the fastest
    (best-of-N) — every rerun is still byte-compared, so extra repeats
    buy timing stability on noisy hosts without weakening the
    exactness check.

    Returns the vector report plus a timing record with both passes'
    timings and the ``speedup`` ratio.
    """
    from repro.errors import SimulationError

    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    checker = LockstepChecker(spec, config,
                              watchdog_factor=watchdog_factor,
                              checkpoints=True,
                              checkpoint_interval=checkpoint_interval,
                              checkpoint_store=checkpoint_store)
    # The golden stream is a shared one-time cost (amortised by the
    # CheckpointStore across both passes and any other campaign on the
    # same pair); capture it outside both timed regions.
    checker.prepare_checkpoints()
    scalar = vector = None
    for _ in range(repeat):
        trial = run_campaign(spec, config, n, seed, spaces=spaces,
                             watchdog_factor=watchdog_factor,
                             checker=checker, progress=progress,
                             checkpoints=True)
        if scalar is None \
                or trial.timing["elapsed_s"] < scalar.timing["elapsed_s"]:
            scalar = trial
        trial = run_campaign(spec, config, n, seed, spaces=spaces,
                             watchdog_factor=watchdog_factor,
                             checker=checker, progress=progress,
                             checkpoints=True, engine="vector")
        if campaign_payload([scalar]) != campaign_payload([trial]):
            raise SimulationError(
                f"vector campaign diverged from the scalar checkpointed "
                f"campaign on {spec.name}/{config.n_alus} ALUs — the "
                f"vector engine is not exact")
        if vector is None \
                or trial.timing["elapsed_s"] < vector.timing["elapsed_s"]:
            vector = trial
    scalar_s = scalar.timing["elapsed_s"]
    vector_s = vector.timing["elapsed_s"]
    timing = {
        "workload": vector.workload,
        "machine": vector.machine,
        "n": n,
        "seed": seed,
        "scalar": dict(scalar.timing),
        "vector": dict(vector.timing),
        "speedup": scalar_s / vector_s if vector_s > 0 else float("inf"),
    }
    return vector, timing


def render_vulnerability_table(reports: Sequence[CampaignReport]) -> str:
    """Render the per-benchmark vulnerability table as aligned text."""
    header = ("benchmark", "machine", "N", "masked", "detected", "hung",
              "SDC", "SDC rate")
    rows = [header]
    for report in reports:
        rows.append((
            report.workload,
            report.machine,
            str(report.n),
            str(report.counts.get(Outcome.MASKED.value, 0)),
            str(report.counts.get(Outcome.DETECTED.value, 0)),
            str(report.counts.get(Outcome.HUNG.value, 0)),
            str(report.counts.get(Outcome.SDC.value, 0)),
            f"{report.sdc_rate * 100:.1f}%",
        ))
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for number, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if number == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def campaign_payload(reports: Sequence[CampaignReport]) -> List[dict]:
    """JSON-friendly form of campaign reports (for the CLI and tools)."""
    return [
        {
            "workload": report.workload,
            "machine": report.machine,
            "n": report.n,
            "seed": report.seed,
            "reference_cycles": report.reference_cycles,
            "counts": dict(report.counts),
            "classified": report.classified,
            "sdc_rate": report.sdc_rate,
            "outcomes": [
                result_payload(result) for result in report.results
            ],
        }
        for report in reports
    ]
