"""Regeneration of the paper's tabular results.

* :func:`build_table1` — Table 1, "Summary of the number of clock cycles
  required for different benchmarks": rows SA-110 and EPIC with 1-4
  ALUs, columns SHA / AES / DCT / Dijkstra.
* :func:`resource_usage_table` — the §5.1 resource bullets: slices for
  1-4 ALUs, per-ALU cost, block RAM and multiplier usage, clock rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.config import MachineConfig, epic_with_alus
from repro.fpga import estimate_clock_mhz, estimate_resources
from repro.harness.runner import BenchmarkRun, run_on_baseline, run_on_epic
from repro.workloads import WORKLOADS, WorkloadSpec

#: Table 1 benchmark order in the paper.
BENCHMARK_ORDER = ("SHA", "AES", "DCT", "Dijkstra")


@dataclass
class Table1:
    """Cycle counts per (machine, benchmark)."""

    benchmarks: List[str]
    machines: List[str]
    cycles: Dict[str, Dict[str, int]]            # machine -> bench -> cycles
    runs: Dict[str, Dict[str, BenchmarkRun]] = field(default_factory=dict)

    def ratio(self, benchmark: str, machine: str = "EPIC-4ALU") -> float:
        """Same-clock speedup of ``machine`` over the SA-110 (§5.2)."""
        return self.cycles["SA-110"][benchmark] / self.cycles[machine][benchmark]

    def render(self) -> str:
        """Plain-text table in the paper's layout."""
        width = max(len(m) for m in self.machines) + 2
        header = " " * width + "".join(
            f"{name:>12}" for name in self.benchmarks
        )
        lines = [header]
        for machine in self.machines:
            row = f"{machine:<{width}}" + "".join(
                f"{self.cycles[machine][name]:>12}"
                for name in self.benchmarks
            )
            lines.append(row)
        return "\n".join(lines)


def build_table1(specs: Optional[Sequence[WorkloadSpec]] = None,
                 alu_counts: Iterable[int] = (1, 2, 3, 4),
                 validate: bool = True,
                 progress: Optional[Callable[[str], None]] = None) -> Table1:
    """Run the full Table 1 matrix.

    ``specs`` defaults to the four paper benchmarks at their default
    (scaled-down) sizes; pass smaller instances for quick runs.
    """
    if specs is None:
        specs = [WORKLOADS[name]() for name in BENCHMARK_ORDER]
    machines = ["SA-110"] + [f"EPIC-{n}ALU" for n in alu_counts]
    cycles: Dict[str, Dict[str, int]] = {m: {} for m in machines}
    runs: Dict[str, Dict[str, BenchmarkRun]] = {m: {} for m in machines}

    for spec in specs:
        if progress:
            progress(f"{spec.name} on SA-110 ...")
        run = run_on_baseline(spec, validate=validate)
        cycles["SA-110"][spec.name] = run.cycles
        runs["SA-110"][spec.name] = run
        for n_alus in alu_counts:
            machine = f"EPIC-{n_alus}ALU"
            if progress:
                progress(f"{spec.name} on {machine} ...")
            run = run_on_epic(spec, epic_with_alus(n_alus),
                              validate=validate)
            cycles[machine][spec.name] = run.cycles
            runs[machine][spec.name] = run

    return Table1(
        benchmarks=[spec.name for spec in specs],
        machines=machines,
        cycles=cycles,
        runs=runs,
    )


@dataclass
class ResourceRow:
    n_alus: int
    slices: int
    block_rams: int
    mult18x18: int
    clock_mhz: float
    paper_slices: Optional[int]


#: §5.1: "Designs with 1, 2, 3 and 4 ALUs take up 4181, 6779, 9367 and
#: [~11955] slices respectively".  The 4-ALU figure is inferred from
#: "each individual ALU occupies around 2600 slices".
PAPER_SLICES = {1: 4181, 2: 6779, 3: 9367, 4: 11955}


def resource_usage_table(alu_counts: Iterable[int] = (1, 2, 3, 4),
                         base: Optional[MachineConfig] = None
                         ) -> List[ResourceRow]:
    """The §5.1 resource sweep."""
    rows = []
    for n_alus in alu_counts:
        config = (base or epic_with_alus(n_alus)).with_changes(n_alus=n_alus)
        estimate = estimate_resources(config)
        rows.append(ResourceRow(
            n_alus=n_alus,
            slices=estimate.slices,
            block_rams=estimate.block_rams,
            mult18x18=estimate.mult18x18,
            clock_mhz=estimate_clock_mhz(config),
            paper_slices=PAPER_SLICES.get(n_alus),
        ))
    return rows


def render_resource_table(rows: Sequence[ResourceRow]) -> str:
    lines = [
        f"{'ALUs':>5} {'slices':>8} {'paper':>8} {'BRAM':>6} "
        f"{'MULT18':>7} {'MHz':>6}"
    ]
    for row in rows:
        paper = str(row.paper_slices) if row.paper_slices else "-"
        lines.append(
            f"{row.n_alus:>5} {row.slices:>8} {paper:>8} "
            f"{row.block_rams:>6} {row.mult18x18:>7} {row.clock_mhz:>6.1f}"
        )
    return "\n".join(lines)
