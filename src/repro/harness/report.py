"""Comparison against the paper's quantitative claims (§5.2).

The copy of Table 1 in the available text is garbled, but the prose
fixes several derived quantities exactly:

* same-clock (cycle-count) advantage of the 4-ALU EPIC over the SA-110:
  1.7x on Dijkstra, 3.8x on SHA, 12.3x on DCT;
* wall-clock (100 MHz vs 41.8 MHz): EPIC-4 is 60 % faster on SHA and
  515 % faster on DCT, while the SA-110 wins AES and Dijkstra;
* SHA and DCT improve as ALUs are added; AES and Dijkstra "remain more
  or less the same regardless of the number of ALUs deployed".

:func:`paper_comparison` evaluates all of these against a measured
Table 1 and reports which hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.harness.tables import Table1

#: Paper's same-clock cycle ratios for the 4-ALU design.
PAPER_CYCLE_RATIOS = {"Dijkstra": 1.7, "SHA": 3.8, "DCT": 12.3}

#: Clock ratio used by the paper's time figures.
CLOCK_RATIO = 100.0 / 41.8


@dataclass
class PaperClaim:
    """One claim, its paper value and our measurement."""

    claim: str
    paper_value: Optional[float]
    measured_value: float
    holds: bool

    def __str__(self) -> str:
        paper = f"{self.paper_value:.2f}" if self.paper_value is not None \
            else "qualitative"
        status = "HOLDS" if self.holds else "DIFFERS"
        return (
            f"[{status}] {self.claim}: paper={paper} "
            f"measured={self.measured_value:.2f}"
        )


def paper_comparison(table: Table1,
                     machine: str = "EPIC-4ALU") -> List[PaperClaim]:
    """Evaluate every §5.2 claim against measured cycle counts."""
    claims: List[PaperClaim] = []

    for benchmark, paper_ratio in PAPER_CYCLE_RATIOS.items():
        if benchmark not in table.benchmarks:
            continue
        measured = table.ratio(benchmark, machine)
        # "Roughly the same factor": within ~2x of the paper's ratio and
        # on the same side of break-even.
        holds = (measured > 1.0) and (
            0.5 <= measured / paper_ratio <= 2.0
        )
        claims.append(PaperClaim(
            claim=f"{benchmark}: same-clock cycle advantage of {machine}",
            paper_value=paper_ratio,
            measured_value=measured,
            holds=holds,
        ))

    # Wall-clock winners: EPIC wins a benchmark iff its cycle advantage
    # exceeds the clock handicap.
    for benchmark, epic_wins_in_paper in (
        ("SHA", True), ("DCT", True), ("AES", False), ("Dijkstra", False),
    ):
        if benchmark not in table.benchmarks:
            continue
        measured = table.ratio(benchmark, machine) / CLOCK_RATIO
        holds = (measured > 1.0) == epic_wins_in_paper
        side = "wins" if epic_wins_in_paper else "loses"
        claims.append(PaperClaim(
            claim=f"{benchmark}: EPIC {side} in wall-clock time",
            paper_value=None,
            measured_value=measured,
            holds=holds,
        ))

    # ALU-count sensitivity: SHA/DCT scale, AES/Dijkstra stay flat.
    one_alu = "EPIC-1ALU"
    if one_alu in table.machines and machine in table.machines:
        for benchmark, should_scale in (
            ("SHA", True), ("DCT", True), ("AES", False), ("Dijkstra", False),
        ):
            if benchmark not in table.benchmarks:
                continue
            gain = (
                table.cycles[one_alu][benchmark]
                / table.cycles[machine][benchmark]
            )
            holds = (gain >= 1.3) if should_scale else (gain < 1.3)
            kind = "scales with" if should_scale else "is insensitive to"
            claims.append(PaperClaim(
                claim=f"{benchmark}: performance {kind} ALU count "
                      f"(1->4 ALU cycle gain)",
                paper_value=None,
                measured_value=gain,
                holds=holds,
            ))
    return claims


def render_report(claims: List[PaperClaim]) -> str:
    lines = ["Paper-claim scoreboard (§5.2):"]
    lines.extend(f"  {claim}" for claim in claims)
    held = sum(claim.holds for claim in claims)
    lines.append(f"  => {held}/{len(claims)} claims hold")
    return "\n".join(lines)
