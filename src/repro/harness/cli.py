"""``epic-run``: regenerate the paper's evaluation from the command line.

Examples::

    epic-run --quick               # scaled-down Table 1 + figures + claims
    epic-run --bench SHA DCT       # a subset
    epic-run --resources           # the §5.1 resource table only
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.harness.figures import all_figures
from repro.harness.report import paper_comparison, render_report
from repro.harness.tables import (
    BENCHMARK_ORDER,
    build_table1,
    render_resource_table,
    resource_usage_table,
)
from repro.workloads import WORKLOADS


def quick_specs(names):
    """Reduced-size instances for fast runs."""
    from repro.workloads import (
        aes_workload, dct_workload, dijkstra_workload, sha_workload,
    )
    table = {
        "SHA": lambda: sha_workload(16, 16),
        "AES": lambda: aes_workload(5),
        "DCT": lambda: dct_workload(16, 16),
        "Dijkstra": lambda: dijkstra_workload(12),
    }
    return [table[name]() for name in names]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="epic-run",
        description="Reproduce the paper's evaluation (Table 1, Figs 3-5).",
    )
    parser.add_argument("--bench", nargs="*", default=list(BENCHMARK_ORDER),
                        choices=list(BENCHMARK_ORDER),
                        help="benchmarks to run")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced input sizes")
    parser.add_argument("--resources", action="store_true",
                        help="print only the resource-usage table (§5.1)")
    parser.add_argument("--alus", nargs="*", type=int, default=[1, 2, 3, 4],
                        help="ALU counts to evaluate")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    arguments = parser.parse_args(argv)

    if arguments.resources:
        print(render_resource_table(resource_usage_table(arguments.alus)))
        return 0

    if arguments.quick:
        specs = quick_specs(arguments.bench)
    else:
        specs = [WORKLOADS[name]() for name in arguments.bench]

    try:
        table = build_table1(
            specs, alu_counts=arguments.alus,
            progress=lambda message: print(f"  {message}", file=sys.stderr),
        )
    except ReproError as error:
        print(f"epic-run: {error}", file=sys.stderr)
        return 1

    if arguments.json:
        claims = paper_comparison(table)
        payload = {
            "table1_cycles": table.cycles,
            "figures_seconds": {
                figure.benchmark: dict(zip(figure.machines, figure.seconds))
                for figure in all_figures(table)
            },
            "claims": [
                {
                    "claim": claim.claim,
                    "paper": claim.paper_value,
                    "measured": claim.measured_value,
                    "holds": claim.holds,
                }
                for claim in claims
            ],
            "resources": [
                {
                    "n_alus": row.n_alus,
                    "slices": row.slices,
                    "paper_slices": row.paper_slices,
                    "block_rams": row.block_rams,
                    "mult18x18": row.mult18x18,
                    "clock_mhz": row.clock_mhz,
                }
                for row in resource_usage_table(arguments.alus)
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0

    print("Table 1: clock cycles")
    print(table.render())
    print()
    for figure in all_figures(table):
        print(figure.render())
        print()
    print(render_report(paper_comparison(table)))
    print()
    print("Resource usage (§5.1):")
    print(render_resource_table(resource_usage_table(arguments.alus)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
