"""``repro-faults``: seeded SEU fault-injection campaigns from the shell.

Examples::

    repro-faults --quick --n 100 --seed 42          # all four benchmarks
    repro-faults --bench SHA --alus 4 --n 100       # the acceptance run
    repro-faults --quick --n 50 --protect-regfile ecc --protect-memory parity
    repro-faults --quick --n 20 --policy squash-bundle --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.config import PROTECTION_SCHEMES, TRAP_POLICIES, epic_with_alus
from repro.errors import ReproError
from repro.fpga import estimate_resources
from repro.harness.cli import quick_specs
from repro.harness.faultcampaign import (
    DEFAULT_SPACES,
    campaign_payload,
    measure_campaign_throughput,
    measure_vector_throughput,
    render_vulnerability_table,
    run_campaign,
)
from repro.harness.tables import BENCHMARK_ORDER
from repro.reliability import FAULT_SPACES
from repro.workloads import WORKLOADS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="Run seeded SEU fault-injection campaigns against the "
                    "EPIC core, lockstep-checked against the IR golden "
                    "model.",
    )
    parser.add_argument("--bench", nargs="*", default=list(BENCHMARK_ORDER),
                        choices=list(BENCHMARK_ORDER),
                        help="benchmarks to attack")
    parser.add_argument("--alus", nargs="*", type=int, default=[4],
                        help="ALU counts (machine presets) to evaluate")
    parser.add_argument("--n", type=int, default=100,
                        help="injections per (benchmark, machine) pair")
    parser.add_argument("--seed", type=int, default=42,
                        help="campaign seed (same seed -> identical table)")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced benchmark input sizes")
    parser.add_argument("--spaces", nargs="*", default=list(DEFAULT_SPACES),
                        choices=list(FAULT_SPACES),
                        help="fault target spaces to draw from")
    parser.add_argument("--policy", default="halt", choices=TRAP_POLICIES,
                        help="architectural trap policy")
    parser.add_argument("--protect-regfile", default="none",
                        choices=PROTECTION_SCHEMES,
                        help="register-file SEU protection")
    parser.add_argument("--protect-memory", default="none",
                        choices=PROTECTION_SCHEMES,
                        help="data-memory SEU protection")
    parser.add_argument("--watchdog", type=float, default=4.0,
                        help="hang watchdog, as a multiple of the "
                             "fault-free cycle count")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard each campaign over N worker "
                             "processes via repro.serve (default: serial; "
                             "the report is byte-identical either way)")
    parser.add_argument("--verbose", action="store_true",
                        help="print one progress line per injection "
                             "instead of one per 25")
    parser.add_argument("--no-checkpoints", action="store_true",
                        help="disable golden checkpoint fast-forwarding "
                             "(the outcome table is identical either way)")
    parser.add_argument("--checkpoint-interval", type=int, default=None,
                        metavar="CYCLES",
                        help="golden checkpoint spacing in cycles "
                             "(default: ~24 checkpoints per workload)")
    parser.add_argument("--checkpoint-store", default=None, metavar="DIR",
                        help="content-addressed on-disk store for golden "
                             "checkpoint streams, shared across processes")
    parser.add_argument("--timing-out", default=None, metavar="FILE",
                        help="write campaign throughput timings (JSON; "
                             "non-deterministic, kept out of --json output)")
    parser.add_argument("--gate-checkpoint-speedup", type=float,
                        default=None, metavar="X",
                        help="run each campaign both from zero and "
                             "checkpointed, verify identical outcome "
                             "tables, and fail unless the checkpointed "
                             "pass is >= X times faster")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "vector"),
                        help="campaign classification engine: 'auto' "
                             "(scalar checker) or 'vector' (batched "
                             "lane engine; byte-identical outcomes)")
    parser.add_argument("--gate-vector-speedup", type=float,
                        default=None, metavar="X",
                        help="run each campaign scalar-checkpointed and "
                             "vector, verify identical outcome tables, "
                             "and fail unless the vector pass is >= X "
                             "times faster")
    parser.add_argument("--gate-repeat", type=int, default=3, metavar="N",
                        help="best-of-N timing trials per engine for "
                             "--gate-vector-speedup (every trial is still "
                             "byte-compared; N > 1 damps host noise)")
    parser.add_argument("--gate-retired-fraction", type=float,
                        default=None, metavar="F",
                        help="with --gate-vector-speedup: fail unless the "
                             "fraction of lanes genuinely retired to the "
                             "scalar checker (grouped re-walks excluded) "
                             "is < F")
    parser.add_argument("--retirement-out", default=None, metavar="FILE",
                        help="write a per-reason lane-retirement artifact "
                             "(JSON) from the vector engine's telemetry")
    arguments = parser.parse_args(argv)

    if arguments.n < 1:
        print("repro-faults: --n must be >= 1", file=sys.stderr)
        return 2
    if arguments.jobs < 1:
        print("repro-faults: --jobs must be >= 1", file=sys.stderr)
        return 2
    if arguments.seed == 0:
        print("repro-faults: --seed must be non-zero (the campaign PRNG "
              "cannot hold state 0)", file=sys.stderr)
        return 2

    if arguments.gate_checkpoint_speedup is not None:
        if arguments.jobs > 1:
            print("repro-faults: --gate-checkpoint-speedup measures the "
                  "serial path; drop --jobs", file=sys.stderr)
            return 2
        if arguments.no_checkpoints:
            print("repro-faults: --gate-checkpoint-speedup and "
                  "--no-checkpoints are contradictory", file=sys.stderr)
            return 2
    if arguments.gate_vector_speedup is not None:
        if arguments.gate_checkpoint_speedup is not None:
            print("repro-faults: pick one gate (--gate-vector-speedup or "
                  "--gate-checkpoint-speedup)", file=sys.stderr)
            return 2
        if arguments.jobs > 1:
            print("repro-faults: --gate-vector-speedup measures the "
                  "serial path; drop --jobs", file=sys.stderr)
            return 2
        if arguments.no_checkpoints:
            print("repro-faults: --gate-vector-speedup compares against "
                  "the checkpointed baseline; drop --no-checkpoints",
                  file=sys.stderr)
            return 2
        if arguments.gate_repeat < 1:
            print("repro-faults: --gate-repeat must be >= 1",
                  file=sys.stderr)
            return 2
    if arguments.gate_retired_fraction is not None \
            and arguments.gate_vector_speedup is None:
        print("repro-faults: --gate-retired-fraction needs "
              "--gate-vector-speedup (it reads the vector pass's "
              "retirement telemetry)", file=sys.stderr)
        return 2

    if arguments.quick:
        specs = quick_specs(arguments.bench)
    else:
        specs = [WORKLOADS[name]() for name in arguments.bench]

    # Checkpointing knobs travel via the environment so that serve
    # worker processes (--jobs) observe the same settings; they are
    # perf knobs only and never enter job digests or the JSON report.
    if arguments.no_checkpoints:
        import os

        os.environ["REPRO_CHECKPOINTS"] = "0"
    if arguments.checkpoint_store:
        import os

        os.environ["REPRO_CHECKPOINT_STORE"] = arguments.checkpoint_store
    store = None
    if arguments.checkpoint_store:
        from repro.core.snapshot import CheckpointStore

        store = CheckpointStore(arguments.checkpoint_store)

    executor = None
    if arguments.jobs > 1:
        from repro.serve import SupervisedPool

        # Warm persistent workers: every shard of every campaign in
        # this invocation shares the same (workload, config) checker
        # memos via affinity routing.
        executor = SupervisedPool(jobs=arguments.jobs, warm=True)

    injections_done = [0]

    def per_injection(result) -> None:
        injections_done[0] += 1
        if arguments.verbose:
            fault = result.fault.describe() if result.fault else "none"
            print(f"    [{injections_done[0]}/{arguments.n}] {fault}: "
                  f"{result.outcome.value}", file=sys.stderr)

    reports = []
    resources = []
    timings = []
    gate_failures = []
    try:
        for spec in specs:
            for n_alus in arguments.alus:
                config = epic_with_alus(
                    n_alus,
                    trap_policy=arguments.policy,
                    regfile_protection=arguments.protect_regfile,
                    memory_protection=arguments.protect_memory,
                )
                injections_done[0] = 0
                if arguments.gate_checkpoint_speedup is not None:
                    report, timing = measure_campaign_throughput(
                        spec, config, arguments.n, arguments.seed,
                        spaces=arguments.spaces,
                        watchdog_factor=arguments.watchdog,
                        checkpoint_interval=arguments.checkpoint_interval,
                        checkpoint_store=store,
                    )
                    timings.append(timing)
                    gate = arguments.gate_checkpoint_speedup
                    verdict = "ok" if timing["speedup"] >= gate else "FAIL"
                    if verdict == "FAIL":
                        gate_failures.append(timing)
                    print(f"  {report.workload} {report.machine}: "
                          f"checkpointed "
                          f"{timing['checkpointed']['faults_per_s']:.1f} "
                          f"faults/s vs from-zero "
                          f"{timing['from_zero']['faults_per_s']:.1f} — "
                          f"speedup {timing['speedup']:.2f}x "
                          f"(gate {gate:.1f}x): {verdict}",
                          file=sys.stderr)
                elif arguments.gate_vector_speedup is not None:
                    report, timing = measure_vector_throughput(
                        spec, config, arguments.n, arguments.seed,
                        spaces=arguments.spaces,
                        watchdog_factor=arguments.watchdog,
                        checkpoint_interval=arguments.checkpoint_interval,
                        checkpoint_store=store,
                        repeat=arguments.gate_repeat,
                    )
                    timings.append(timing)
                    gate = arguments.gate_vector_speedup
                    verdict = "ok" if timing["speedup"] >= gate else "FAIL"
                    if verdict == "FAIL":
                        gate_failures.append(timing)
                    print(f"  {report.workload} {report.machine}: "
                          f"vector "
                          f"{timing['vector']['faults_per_s']:.1f} "
                          f"faults/s vs scalar checkpointed "
                          f"{timing['scalar']['faults_per_s']:.1f} — "
                          f"speedup {timing['speedup']:.2f}x "
                          f"(gate {gate:.1f}x): {verdict}",
                          file=sys.stderr)
                    if arguments.gate_retired_fraction is not None:
                        retired_fraction = (
                            timing["vector"]["scalar_faults"]
                            / arguments.n)
                        timing["retired_fraction"] = retired_fraction
                        limit = arguments.gate_retired_fraction
                        verdict = ("ok" if retired_fraction < limit
                                   else "FAIL")
                        if verdict == "FAIL":
                            gate_failures.append(timing)
                        print(f"  {report.workload} {report.machine}: "
                              f"{timing['vector']['scalar_faults']}/"
                              f"{arguments.n} lanes retired to scalar "
                              f"({retired_fraction:.1%}, gate "
                              f"<{limit:.0%}): {verdict}",
                              file=sys.stderr)
                else:
                    report = run_campaign(
                        spec, config, arguments.n, arguments.seed,
                        spaces=arguments.spaces,
                        watchdog_factor=arguments.watchdog,
                        progress=lambda message: print(f"  {message}",
                                                       file=sys.stderr),
                        on_result=per_injection,
                        executor=executor,
                        checkpoints=(False if arguments.no_checkpoints
                                     else None),
                        checkpoint_interval=arguments.checkpoint_interval,
                        checkpoint_store=store,
                        engine=arguments.engine,
                    )
                    if report.timing is not None:
                        timing = dict(report.timing)
                        timing.update(workload=report.workload,
                                      machine=report.machine,
                                      n=report.n, seed=report.seed)
                        timings.append(timing)
                        print(f"  {report.workload} {report.machine}: "
                              f"{timing['faults_per_s']:.1f} faults/s "
                              f"({timing['prefix_cycles_skipped']} prefix "
                              f"cycles skipped, "
                              f"{timing['convergence_cuts']} convergence "
                              f"cuts)", file=sys.stderr)
                        if "vector_occupancy" in timing:
                            print(f"    vector: "
                                  f"{timing['vector_faults']} lanes, "
                                  f"{timing['rewalk_lanes']} re-walked in "
                                  f"{timing['rewalk_groups']} group(s), "
                                  f"{timing['scalar_faults']} retired to "
                                  f"scalar, occupancy "
                                  f"{timing['vector_occupancy']:.2f} "
                                  f"(+{timing['wasted_retired_cycles']:.2f} "
                                  f"wasted), "
                                  f"numpy={timing['vector_numpy']}",
                                  file=sys.stderr)
                        if arguments.verbose and timing.get(
                                "engine_downgrade_reason"):
                            print(f"    vector engine downgraded to "
                                  f"scalar: "
                                  f"{timing['engine_downgrade_reason']}",
                                  file=sys.stderr)
                reports.append(report)
                estimate = estimate_resources(config)
                resources.append({
                    "machine": report.machine,
                    "slices": estimate.slices,
                    "block_rams": estimate.block_rams,
                })
    except ReproError as error:
        print(f"repro-faults: {error}", file=sys.stderr)
        return 1
    finally:
        if executor is not None:
            executor.close()

    gate_value = arguments.gate_checkpoint_speedup \
        if arguments.gate_checkpoint_speedup is not None \
        else arguments.gate_vector_speedup
    gate_name = "checkpoint" if arguments.gate_checkpoint_speedup \
        is not None else "vector"
    if arguments.timing_out:
        with open(arguments.timing_out, "w", encoding="utf-8") as handle:
            json.dump({
                "timings": timings,
                "gate": gate_value,
                "gate_failures": len(gate_failures),
            }, handle, indent=2)
            handle.write("\n")
    if arguments.retirement_out:
        retirements = []
        for timing in timings:
            # Gate timings nest the vector pass under "vector"; plain
            # --engine vector runs carry the keys at the top level.
            source = timing.get("vector", timing)
            if "lanes_retired" not in source:
                continue
            retirements.append({
                "workload": timing.get("workload"),
                "machine": timing.get("machine"),
                "lanes_retired": source["lanes_retired"],
                "scalar_faults": source["scalar_faults"],
                "rewalk_lanes": source.get("rewalk_lanes", 0),
                "rewalk_groups": source.get("rewalk_groups", 0),
                "retired_fraction": source["scalar_faults"] / arguments.n,
                "engine_downgrade_reason":
                    source.get("engine_downgrade_reason"),
            })
        with open(arguments.retirement_out, "w",
                  encoding="utf-8") as handle:
            json.dump({
                "n": arguments.n,
                "seed": arguments.seed,
                "gate_retired_fraction": arguments.gate_retired_fraction,
                "campaigns": retirements,
            }, handle, indent=2)
            handle.write("\n")

    exit_code = 0
    if gate_failures:
        print(f"repro-faults: {gate_name} speedup gate "
              f"({gate_value:.1f}x) failed for "
              f"{len(gate_failures)} campaign(s)", file=sys.stderr)
        exit_code = 1

    if arguments.json:
        payload = {
            "seed": arguments.seed,
            "n": arguments.n,
            "policy": arguments.policy,
            "protection": {
                "regfile": arguments.protect_regfile,
                "memory": arguments.protect_memory,
            },
            "campaigns": campaign_payload(reports),
            "resources": resources,
        }
        print(json.dumps(payload, indent=2))
        return exit_code

    print(f"Fault-injection campaigns: N={arguments.n}, "
          f"seed={arguments.seed}, policy={arguments.policy}, "
          f"regfile={arguments.protect_regfile}, "
          f"memory={arguments.protect_memory}")
    print()
    print(render_vulnerability_table(reports))
    if arguments.protect_regfile != "none" or arguments.protect_memory != "none":
        print()
        for entry in resources:
            print(f"  {entry['machine']}: {entry['slices']} slices, "
                  f"{entry['block_rams']} BRAM (with protection)")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
