"""``repro-faults``: seeded SEU fault-injection campaigns from the shell.

Examples::

    repro-faults --quick --n 100 --seed 42          # all four benchmarks
    repro-faults --bench SHA --alus 4 --n 100       # the acceptance run
    repro-faults --quick --n 50 --protect-regfile ecc --protect-memory parity
    repro-faults --quick --n 20 --policy squash-bundle --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.config import PROTECTION_SCHEMES, TRAP_POLICIES, epic_with_alus
from repro.errors import ReproError
from repro.fpga import estimate_resources
from repro.harness.cli import quick_specs
from repro.harness.faultcampaign import (
    DEFAULT_SPACES,
    campaign_payload,
    render_vulnerability_table,
    run_campaign,
)
from repro.harness.tables import BENCHMARK_ORDER
from repro.reliability import FAULT_SPACES
from repro.workloads import WORKLOADS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="Run seeded SEU fault-injection campaigns against the "
                    "EPIC core, lockstep-checked against the IR golden "
                    "model.",
    )
    parser.add_argument("--bench", nargs="*", default=list(BENCHMARK_ORDER),
                        choices=list(BENCHMARK_ORDER),
                        help="benchmarks to attack")
    parser.add_argument("--alus", nargs="*", type=int, default=[4],
                        help="ALU counts (machine presets) to evaluate")
    parser.add_argument("--n", type=int, default=100,
                        help="injections per (benchmark, machine) pair")
    parser.add_argument("--seed", type=int, default=42,
                        help="campaign seed (same seed -> identical table)")
    parser.add_argument("--quick", action="store_true",
                        help="use reduced benchmark input sizes")
    parser.add_argument("--spaces", nargs="*", default=list(DEFAULT_SPACES),
                        choices=list(FAULT_SPACES),
                        help="fault target spaces to draw from")
    parser.add_argument("--policy", default="halt", choices=TRAP_POLICIES,
                        help="architectural trap policy")
    parser.add_argument("--protect-regfile", default="none",
                        choices=PROTECTION_SCHEMES,
                        help="register-file SEU protection")
    parser.add_argument("--protect-memory", default="none",
                        choices=PROTECTION_SCHEMES,
                        help="data-memory SEU protection")
    parser.add_argument("--watchdog", type=float, default=4.0,
                        help="hang watchdog, as a multiple of the "
                             "fault-free cycle count")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard each campaign over N worker "
                             "processes via repro.serve (default: serial; "
                             "the report is byte-identical either way)")
    parser.add_argument("--verbose", action="store_true",
                        help="print one progress line per injection "
                             "instead of one per 25")
    arguments = parser.parse_args(argv)

    if arguments.n < 1:
        print("repro-faults: --n must be >= 1", file=sys.stderr)
        return 2
    if arguments.jobs < 1:
        print("repro-faults: --jobs must be >= 1", file=sys.stderr)
        return 2

    if arguments.quick:
        specs = quick_specs(arguments.bench)
    else:
        specs = [WORKLOADS[name]() for name in arguments.bench]

    executor = None
    if arguments.jobs > 1:
        from repro.serve import PoolExecutor

        executor = PoolExecutor(jobs=arguments.jobs)

    injections_done = [0]

    def per_injection(result) -> None:
        injections_done[0] += 1
        if arguments.verbose:
            fault = result.fault.describe() if result.fault else "none"
            print(f"    [{injections_done[0]}/{arguments.n}] {fault}: "
                  f"{result.outcome.value}", file=sys.stderr)

    reports = []
    resources = []
    try:
        for spec in specs:
            for n_alus in arguments.alus:
                config = epic_with_alus(
                    n_alus,
                    trap_policy=arguments.policy,
                    regfile_protection=arguments.protect_regfile,
                    memory_protection=arguments.protect_memory,
                )
                injections_done[0] = 0
                report = run_campaign(
                    spec, config, arguments.n, arguments.seed,
                    spaces=arguments.spaces,
                    watchdog_factor=arguments.watchdog,
                    progress=lambda message: print(f"  {message}",
                                                   file=sys.stderr),
                    on_result=per_injection,
                    executor=executor,
                )
                reports.append(report)
                estimate = estimate_resources(config)
                resources.append({
                    "machine": report.machine,
                    "slices": estimate.slices,
                    "block_rams": estimate.block_rams,
                })
    except ReproError as error:
        print(f"repro-faults: {error}", file=sys.stderr)
        return 1

    if arguments.json:
        payload = {
            "seed": arguments.seed,
            "n": arguments.n,
            "policy": arguments.policy,
            "protection": {
                "regfile": arguments.protect_regfile,
                "memory": arguments.protect_memory,
            },
            "campaigns": campaign_payload(reports),
            "resources": resources,
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(f"Fault-injection campaigns: N={arguments.n}, "
          f"seed={arguments.seed}, policy={arguments.policy}, "
          f"regfile={arguments.protect_regfile}, "
          f"memory={arguments.protect_memory}")
    print()
    print(render_vulnerability_table(reports))
    if arguments.protect_regfile != "none" or arguments.protect_memory != "none":
        print()
        for entry in resources:
            print(f"  {entry['machine']}: {entry['slices']} slices, "
                  f"{entry['block_rams']} BRAM (with protection)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
