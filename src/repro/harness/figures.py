"""Regeneration of Figures 3-5: execution time per processor.

"Execution time is calculated as a product of clock length and the
number of clock cycles taken" (§5.2), with the SA-110 at 100 MHz and
the EPIC prototype at 41.8 MHz.  Each figure is one benchmark's bar
series over the five processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.harness.tables import Table1

#: Which figure number the paper gives each benchmark's time chart.
FIGURE_NUMBERS = {"SHA": 3, "DCT": 4, "Dijkstra": 5}


@dataclass
class FigureSeries:
    """One execution-time figure: machine labels and seconds."""

    benchmark: str
    figure_number: int
    machines: List[str]
    seconds: List[float]

    def speedup_over_sa110(self, machine: str) -> float:
        sa110 = self.seconds[self.machines.index("SA-110")]
        other = self.seconds[self.machines.index(machine)]
        return sa110 / other

    def render(self) -> str:
        """ASCII bar chart (the paper's Figs. 3-5 are bar charts)."""
        peak = max(self.seconds)
        lines = [
            f"Figure {self.figure_number}: execution time for "
            f"{self.benchmark} (seconds)"
        ]
        for machine, value in zip(self.machines, self.seconds):
            bar = "#" * max(1, int(round(40 * value / peak))) if peak else ""
            lines.append(f"  {machine:<12} {value * 1e3:10.3f} ms  {bar}")
        return "\n".join(lines)


def execution_time_figure(table: Table1, benchmark: str) -> FigureSeries:
    """Build the Fig. 3/4/5 series for one benchmark from Table 1 runs."""
    machines = list(table.machines)
    seconds = []
    for machine in machines:
        run = table.runs[machine][benchmark]
        seconds.append(run.time_seconds)
    return FigureSeries(
        benchmark=benchmark,
        figure_number=FIGURE_NUMBERS.get(benchmark, 0),
        machines=machines,
        seconds=seconds,
    )


def all_figures(table: Table1) -> List[FigureSeries]:
    """Figures 3-5 (SHA, DCT, Dijkstra) in paper order."""
    return [
        execution_time_figure(table, name)
        for name in ("SHA", "DCT", "Dijkstra")
        if name in table.benchmarks
    ]
