"""Evaluation harness: regenerates the paper's Table 1 and Figures 3-5.

The flow mirrors §5.2: compile each benchmark once per processor (the
SA-110 baseline plus EPIC designs with 1-4 ALUs), measure clock cycles
in the cycle-accurate simulators, validate every run's outputs against
the golden reference, and convert to execution time using 100 MHz for
the SA-110 and the FPGA timing model's clock (41.8 MHz) for EPIC.
"""

from repro.harness.runner import (
    BenchmarkRun,
    OUTCOME_CYCLE_LIMIT,
    OUTCOME_OK,
    run_on_baseline,
    run_on_epic,
)
from repro.harness.tables import Table1, build_table1, resource_usage_table
from repro.harness.figures import FigureSeries, execution_time_figure
from repro.harness.report import paper_comparison, PaperClaim
from repro.harness.faultcampaign import (
    CampaignReport,
    generate_faults,
    measure_vector_throughput,
    render_vulnerability_table,
    run_campaign,
)

__all__ = [
    "BenchmarkRun",
    "OUTCOME_CYCLE_LIMIT",
    "OUTCOME_OK",
    "run_on_baseline",
    "run_on_epic",
    "CampaignReport",
    "generate_faults",
    "measure_vector_throughput",
    "render_vulnerability_table",
    "run_campaign",
    "Table1",
    "build_table1",
    "resource_usage_table",
    "FigureSeries",
    "execution_time_figure",
    "paper_comparison",
    "PaperClaim",
]
