"""Reproduction of "Customisable EPIC Processor: Architecture and Tools"
(Chu, Dimond, Perrott, Seng and Luk — DATE 2004).

Public API overview
===================

Configuration and ISA
    :class:`~repro.config.MachineConfig`, :func:`~repro.config.epic_config`,
    :class:`~repro.isa.InstructionFormat`, :class:`~repro.isa.CustomOpSpec`

Toolchain
    :func:`~repro.asm.assemble` (assembler),
    :func:`~repro.lang.compile_minic` (MiniC front-end),
    :func:`~repro.backend.compile_ir_to_epic` (scheduler + code generator)

Simulators
    :class:`~repro.core.EpicProcessor` (cycle-accurate EPIC core),
    :class:`~repro.baseline.Sa110Simulator` (StrongARM-like scalar baseline)

Evaluation
    :mod:`repro.workloads` (SHA-256, AES, DCT, Dijkstra),
    :mod:`repro.harness` (Table 1 / Fig. 3-5 regeneration),
    :mod:`repro.fpga` (Virtex-II area and clock model),
    :mod:`repro.explore` (design-space exploration)
"""

from repro.config import AluFeature, MachineConfig, epic_config, epic_with_alus
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AluFeature",
    "MachineConfig",
    "epic_config",
    "epic_with_alus",
    "ReproError",
    "__version__",
]
