"""MiniC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.lexer import Token, tokenize
from repro.isa.semantics import to_signed

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_ASSIGN = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            token = self.current
            wanted = text or kind
            raise CompileError(
                f"expected {wanted!r}, found {token.text or token.kind!r}",
                token.line, token.column,
            )
        return self.advance()

    def error(self, message: str) -> CompileError:
        token = self.current
        return CompileError(message, token.line, token.column)

    # -- constant expressions (global initialisers, array sizes) ----------

    def _const_eval(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Unary):
            value = self._const_eval(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return int(value == 0)
        if isinstance(expr, ast.Bin):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            mask = 0xFFFFFFFF
            operations = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "<<": lambda: left << (right & 31),
                ">>": lambda: to_signed(left & mask, 32) >> (right & 31),
                ">>>": lambda: (left & mask) >> (right & 31),
            }
            if expr.op in operations:
                return to_signed(operations[expr.op]() & mask, 32)
            if expr.op == "/" and right != 0:
                quotient = abs(left) // abs(right)
                return -quotient if (left < 0) != (right < 0) else quotient
        raise CompileError(
            "expression is not a compile-time constant",
            getattr(expr, "line", 0),
        )

    def parse_const_expr(self) -> int:
        return self._const_eval(self.parse_expr())

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.current
            precedence = _PRECEDENCE.get(token.text) if token.kind == "op" else None
            if precedence is None or precedence < min_precedence:
                return left
            self.advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Bin(token.text, left, right, token.line)

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            return ast.Unary(token.text, self._parse_unary(), token.line)
        if token.kind == "op" and token.text == "+":
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "num":
            self.advance()
            return ast.Num(token.value, token.line)
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return ast.CallE(token.text, args, token.line)
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                return ast.Index(token.text, index, token.line)
            return ast.Ident(token.text, token.line)
        raise self.error(f"unexpected token {token.text or token.kind!r}")

    # -- statements ------------------------------------------------------------

    def _parse_assign_core(self) -> ast.Assign:
        """An assignment without the trailing semicolon (for for-headers)."""
        token = self.expect("ident")
        target: Union[ast.Ident, ast.Index]
        if self.accept("op", "["):
            index = self.parse_expr()
            self.expect("op", "]")
            target = ast.Index(token.text, index, token.line)
        else:
            target = ast.Ident(token.text, token.line)
        op_token = self.current
        if op_token.kind != "op" or (
            op_token.text != "=" and op_token.text not in _COMPOUND_ASSIGN
        ):
            raise self.error("expected an assignment operator")
        self.advance()
        value = self.parse_expr()
        compound = _COMPOUND_ASSIGN.get(op_token.text)
        return ast.Assign(target, compound, value, token.line)

    def parse_statement(self) -> ast.Stmt:
        token = self.current

        if token.kind == "op" and token.text == "{":
            return self.parse_block()

        if token.kind == "kw":
            if token.text in ("int", "const"):
                return self._parse_local_decl()
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "for":
                return self._parse_for(unroll=0)
            if token.text == "unroll":
                return self._parse_unroll_for()
            if token.text == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expr()
                self.expect("op", ";")
                return ast.Return(value, token.line)
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(token.line)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(token.line)
            raise self.error(f"unexpected keyword {token.text!r}")

        if token.kind == "ident":
            # Distinguish a call statement from an assignment.
            next_token = self.tokens[self.position + 1]
            if next_token.kind == "op" and next_token.text == "(":
                expr = self.parse_expr()
                self.expect("op", ";")
                return ast.ExprStmt(expr, token.line)
            statement = self._parse_assign_core()
            self.expect("op", ";")
            return statement

        raise self.error(f"unexpected token {token.text or token.kind!r}")

    def _parse_local_decl(self) -> ast.Stmt:
        self.accept("kw", "const")
        self.expect("kw", "int")
        name_token = self.expect("ident")
        if self.accept("op", "["):
            size = self.parse_const_expr()
            self.expect("op", "]")
            self.expect("op", ";")
            if size < 1:
                raise CompileError(
                    f"array {name_token.text!r} must have positive size",
                    name_token.line,
                )
            return ast.ArrayDecl(name_token.text, size, name_token.line)
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return ast.VarDecl(name_token.text, init, name_token.line)

    def parse_block(self) -> ast.BlockStmt:
        open_token = self.expect("op", "{")
        statements: List[ast.Stmt] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise self.error("unterminated block")
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return ast.BlockStmt(statements, open_token.line)

    def _parse_body(self) -> ast.BlockStmt:
        """A loop/if body: either a block or a single statement."""
        if self.check("op", "{"):
            return self.parse_block()
        statement = self.parse_statement()
        return ast.BlockStmt([statement], getattr(statement, "line", 0))

    def _parse_if(self) -> ast.If:
        token = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self._parse_body()
        els = None
        if self.accept("kw", "else"):
            els = self._parse_body()
        return ast.If(cond, then, els, token.line)

    def _parse_while(self) -> ast.While:
        token = self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self._parse_body()
        return ast.While(cond, body, token.line)

    def _parse_unroll_for(self) -> ast.For:
        self.expect("kw", "unroll")
        factor = -1  # full unroll by default
        if self.accept("op", "("):
            factor = self.parse_const_expr()
            self.expect("op", ")")
            if factor < 2:
                raise self.error("unroll factor must be >= 2")
        return self._parse_for(unroll=factor)

    def _parse_for(self, unroll: int) -> ast.For:
        token = self.expect("kw", "for")
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            init = self._parse_assign_core()
        self.expect("op", ";")
        cond = None
        if not self.check("op", ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self._parse_assign_core()
        self.expect("op", ")")
        body = self._parse_body()
        return ast.For(init, cond, step, body, unroll, token.line)

    # -- top level ----------------------------------------------------------------

    def _parse_global_init(self) -> Tuple[int, ...]:
        if self.accept("op", "{"):
            values: List[int] = []
            if not self.check("op", "}"):
                values.append(self.parse_const_expr())
                while self.accept("op", ","):
                    if self.check("op", "}"):
                        break  # tolerate a trailing comma
                    values.append(self.parse_const_expr())
            self.expect("op", "}")
            return tuple(values)
        return (self.parse_const_expr(),)

    def parse_program(self) -> ast.ProgramAst:
        program = ast.ProgramAst()
        while not self.check("eof"):
            is_const = bool(self.accept("kw", "const"))
            is_void = bool(self.accept("kw", "void"))
            if not is_void:
                self.expect("kw", "int")
            name_token = self.expect("ident")

            if self.check("op", "("):  # function
                self.advance()
                params: List[ast.Param] = []
                if not self.check("op", ")"):
                    if self.accept("kw", "void"):
                        pass  # f(void)
                    else:
                        self.expect("kw", "int")
                        param = self.expect("ident")
                        params.append(ast.Param(param.text, param.line))
                        while self.accept("op", ","):
                            self.expect("kw", "int")
                            param = self.expect("ident")
                            params.append(ast.Param(param.text, param.line))
                self.expect("op", ")")
                body = self.parse_block()
                program.functions.append(
                    ast.FuncDecl(
                        name_token.text, params, body,
                        returns_value=not is_void, line=name_token.line,
                    )
                )
                continue

            if is_void:
                raise CompileError(
                    "void is only valid as a function return type",
                    name_token.line,
                )

            size: Optional[int] = None
            if self.accept("op", "["):
                size = self.parse_const_expr()
                self.expect("op", "]")
                if size < 1:
                    raise CompileError(
                        f"array {name_token.text!r} must have positive size",
                        name_token.line,
                    )
            init: Tuple[int, ...] = ()
            if self.accept("op", "="):
                init = self._parse_global_init()
                if size is None and len(init) != 1:
                    raise CompileError(
                        "scalar global takes a single initialiser",
                        name_token.line,
                    )
            self.expect("op", ";")
            program.globals.append(
                ast.GlobalDecl(name_token.text, size, init, is_const,
                               name_token.line)
            )
        return program


def parse_program(source: str) -> ast.ProgramAst:
    """Parse MiniC source text into an AST."""
    return _Parser(tokenize(source)).parse_program()
