"""MiniC: the C-subset front-end of the toolchain (IMPACT's role, §4.1).

The paper compiles C benchmarks through Trimaran's IMPACT module.  MiniC
is the C subset in which this reproduction's benchmarks are written:

* one type, ``int`` (a 32-bit two's-complement word); ``void`` functions;
* global scalars and one-dimensional arrays, with initialisers;
* local scalars and constant-size local arrays;
* expressions: ``+ - * / % & | ^ << >> >>> == != < <= > >= && || ! ~``
  and unary minus, function calls, array indexing, decimal/hex literals
  (``>>`` is arithmetic shift right, ``>>>`` is logical);
* statements: assignment (with compound operators ``+= -= *= &= |= ^=
  <<= >>=``), ``if``/``else``, ``while``, ``for``, ``break``,
  ``continue``, ``return``, blocks;
* ``unroll(K) for (...) ...`` / ``unroll for (...) ...`` — the
  ILP-exposing loop-unrolling annotation applied before lowering
  (Trimaran exposes parallelism with the same family of loop
  transformations).

Semantics are fully defined (wrapping arithmetic, truncating division)
so the golden IR interpreter, the EPIC core and the SA-110 baseline can
be compared bit-for-bit.
"""

from repro.lang.parser import parse_program
from repro.lang.compile import compile_minic, frontend
from repro.lang.unroll import unroll_program

__all__ = ["parse_program", "compile_minic", "frontend", "unroll_program"]
