"""``epic-cc``: compile MiniC to EPIC assembly / run it from the shell."""

from __future__ import annotations

import argparse
import sys

from repro.backend import compile_minic_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.errors import ReproError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="epic-cc",
        description="Compile a MiniC program for the customisable EPIC "
                    "processor (and optionally simulate it).",
    )
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument("--alus", type=int, default=4)
    parser.add_argument("--issue", type=int, default=4)
    parser.add_argument("--gprs", type=int, default=64)
    parser.add_argument("--no-unroll", action="store_true",
                        help="ignore unroll annotations")
    parser.add_argument("--no-if-convert", action="store_true",
                        help="disable if-conversion")
    parser.add_argument("-S", "--emit-asm", action="store_true",
                        help="print the scheduled assembly")
    parser.add_argument("--run", action="store_true",
                        help="simulate and print cycles + return value")
    parser.add_argument("--mem-words", type=int, default=1 << 16)
    arguments = parser.parse_args(argv)

    config = epic_config(
        n_alus=arguments.alus,
        issue_width=arguments.issue,
        n_gprs=arguments.gprs,
    )
    try:
        with open(arguments.source) as handle:
            source = handle.read()
        compilation = compile_minic_to_epic(
            source, config,
            unroll=not arguments.no_unroll,
            if_convert=not arguments.no_if_convert,
        )
    except ReproError as error:
        print(f"epic-cc: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"epic-cc: {error}", file=sys.stderr)
        return 1

    if arguments.emit_asm:
        print(compilation.assembly)
    print(
        f"{arguments.source}: {compilation.code_bundles} bundles, "
        f"{compilation.program.n_operations} operations "
        f"[{config.describe()}]",
        file=sys.stderr,
    )
    if arguments.run:
        cpu = EpicProcessor(config, compilation.program,
                            mem_words=arguments.mem_words)
        try:
            result = cpu.run()
        except ReproError as error:
            print(f"epic-cc: simulation failed: {error}", file=sys.stderr)
            return 1
        print(f"cycles: {result.cycles}")
        print(f"return: {cpu.gpr.read(2)}")
        print(cpu.stats.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
