"""Lowering: MiniC AST -> IR.

Conventions:

* every mutable scalar (parameter or local) lives in one virtual
  register, re-written with ``Copy`` on assignment;
* global scalars are one-word global arrays accessed with load/store;
* array names decay to their base address (global ``Sym`` or the frame
  address from ``Alloca``), and ``x[i]`` indexes from whatever address
  value ``x`` evaluates to — which is also how buffers are passed to
  functions;
* ``&&``/``||``/``!`` lower to short-circuit control flow in branch
  position and to explicit 0/1 materialisation in value position;
* local arrays are hoisted to a single ``Alloca`` each in the entry
  block, so machine backends can assign static frame offsets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.ir.builder import FunctionBuilder, ModuleBuilder
from repro.ir.instructions import Alloca
from repro.ir.module import Module
from repro.ir.values import Const, Sym, Value, VReg
from repro.lang import ast

_BIN_TO_IR = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor",
    "<<": "shl", ">>": "shra", ">>>": "shr",
}
_CMP_TO_IR = {
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}

#: name -> (kind, handle); kinds: "reg", "gscalar", "garray", "larray".
_Binding = Tuple[str, Union[VReg, Sym]]


class _Env:
    def __init__(self, parent: Optional["_Env"] = None):
        self.parent = parent
        self.bindings: Dict[str, _Binding] = {}

    def bind(self, name: str, binding: _Binding) -> None:
        self.bindings[name] = binding

    def lookup(self, name: str, line: int) -> _Binding:
        env: Optional[_Env] = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        raise CompileError(f"use of undeclared {name!r}", line)


class _FunctionLowerer:
    def __init__(self, declaration: ast.FuncDecl, module_env: _Env,
                 builder: FunctionBuilder):
        self.declaration = declaration
        self.builder = builder
        self.module_env = module_env
        #: (break_target, continue_target) stack.
        self.loop_targets: List[Tuple[str, str]] = []
        self.entry_allocas: List[Alloca] = []

    # -- expression lowering ---------------------------------------------

    def _base_address(self, name: str, env: _Env, line: int) -> Value:
        kind, handle = env.lookup(name, line)
        if kind == "garray":
            return handle
        if kind == "larray":
            return handle
        if kind == "gscalar":
            return self.builder.load(handle, 0, hint="g")
        return handle  # "reg": a scalar holding an address

    def eval_expr(self, expr: ast.Expr, env: _Env) -> Value:
        builder = self.builder
        if isinstance(expr, ast.Num):
            return Const(expr.value)
        if isinstance(expr, ast.Ident):
            kind, handle = env.lookup(expr.name, expr.line)
            if kind == "reg":
                return handle
            if kind == "gscalar":
                return builder.load(handle, 0, hint="g")
            return handle  # array decay: the address
        if isinstance(expr, ast.Index):
            base = self._base_address(expr.name, env, expr.line)
            index = self.eval_expr(expr.index, env)
            return builder.load(base, index, hint="e")
        if isinstance(expr, ast.Unary):
            if expr.op == "-":
                return builder.binop("sub", 0, self.eval_expr(expr.operand, env))
            if expr.op == "~":
                return builder.binop("xor", self.eval_expr(expr.operand, env), -1)
            if expr.op == "!":
                return builder.cmp("eq", self.eval_expr(expr.operand, env), 0)
            raise CompileError(f"unknown unary {expr.op!r}", expr.line)
        if isinstance(expr, ast.Bin):
            if expr.op in ("&&", "||"):
                return self._eval_short_circuit(expr, env)
            if expr.op in _CMP_TO_IR:
                left = self.eval_expr(expr.left, env)
                right = self.eval_expr(expr.right, env)
                return builder.cmp(_CMP_TO_IR[expr.op], left, right)
            op = _BIN_TO_IR.get(expr.op)
            if op is None:
                raise CompileError(f"unknown operator {expr.op!r}", expr.line)
            left = self.eval_expr(expr.left, env)
            right = self.eval_expr(expr.right, env)
            return builder.binop(op, left, right)
        if isinstance(expr, ast.CallE):
            arguments = [self.eval_expr(argument, env) for argument in expr.args]
            return builder.call(expr.name, arguments)
        raise CompileError(f"unknown expression {expr!r}")  # pragma: no cover

    def _eval_short_circuit(self, expr: ast.Bin, env: _Env) -> VReg:
        builder = self.builder
        result = builder.vreg("bool")
        true_block = builder.new_block("sc_t")
        false_block = builder.new_block("sc_f")
        join_block = builder.new_block("sc_j")
        self.lower_condition(expr, env, true_block, false_block)
        builder.set_block(true_block)
        builder.copy_to(result, 1)
        builder.br(join_block)
        builder.set_block(false_block)
        builder.copy_to(result, 0)
        builder.br(join_block)
        builder.set_block(join_block)
        return result

    def lower_condition(self, expr: ast.Expr, env: _Env,
                        true_block: str, false_block: str) -> None:
        builder = self.builder
        if isinstance(expr, ast.Bin) and expr.op == "&&":
            middle = builder.new_block("and")
            self.lower_condition(expr.left, env, middle, false_block)
            builder.set_block(middle)
            self.lower_condition(expr.right, env, true_block, false_block)
            return
        if isinstance(expr, ast.Bin) and expr.op == "||":
            middle = builder.new_block("or")
            self.lower_condition(expr.left, env, true_block, middle)
            builder.set_block(middle)
            self.lower_condition(expr.right, env, true_block, false_block)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_condition(expr.operand, env, false_block, true_block)
            return
        if isinstance(expr, ast.Num):
            builder.br(true_block if expr.value != 0 else false_block)
            return
        if isinstance(expr, ast.Bin) and expr.op in _CMP_TO_IR:
            left = self.eval_expr(expr.left, env)
            right = self.eval_expr(expr.right, env)
            cond = builder.cmp(_CMP_TO_IR[expr.op], left, right)
            builder.cond_br(cond, true_block, false_block)
            return
        value = self.eval_expr(expr, env)
        cond = builder.cmp("ne", value, 0)
        builder.cond_br(cond, true_block, false_block)

    # -- statements -----------------------------------------------------------

    def _lower_assign(self, statement: ast.Assign, env: _Env) -> None:
        builder = self.builder
        target = statement.target
        if isinstance(target, ast.Ident):
            kind, handle = env.lookup(target.name, target.line)
            if kind in ("garray", "larray"):
                raise CompileError(
                    f"cannot assign to array {target.name!r}", target.line
                )
            if statement.op is None:
                value = self.eval_expr(statement.value, env)
            else:
                current: Value
                if kind == "reg":
                    current = handle
                else:
                    current = builder.load(handle, 0, hint="g")
                op = _BIN_TO_IR[statement.op]
                value = builder.binop(
                    op, current, self.eval_expr(statement.value, env)
                )
            if kind == "reg":
                builder.copy_to(handle, value)
            else:
                builder.store(value, handle, 0)
            return

        base = self._base_address(target.name, env, target.line)
        index = self.eval_expr(target.index, env)
        if statement.op is None:
            value = self.eval_expr(statement.value, env)
        else:
            current = builder.load(base, index, hint="e")
            op = _BIN_TO_IR[statement.op]
            value = builder.binop(
                op, current, self.eval_expr(statement.value, env)
            )
        builder.store(value, base, index)

    def lower_block(self, block: ast.BlockStmt, parent: _Env) -> None:
        env = _Env(parent)
        for statement in block.statements:
            if self.builder.terminated:
                return  # unreachable code after return/break/continue
            self.lower_stmt(statement, env)

    def lower_stmt(self, statement: ast.Stmt, env: _Env) -> None:
        builder = self.builder

        if isinstance(statement, ast.VarDecl):
            reg = builder.vreg(statement.name + "_")
            if statement.init is not None:
                builder.copy_to(reg, self.eval_expr(statement.init, env))
            else:
                builder.copy_to(reg, 0)
            env.bind(statement.name, ("reg", reg))
            return

        if isinstance(statement, ast.ArrayDecl):
            address = builder.vreg(statement.name + "_addr")
            self.entry_allocas.append(Alloca(address, statement.size))
            env.bind(statement.name, ("larray", address))
            return

        if isinstance(statement, ast.Assign):
            self._lower_assign(statement, env)
            return

        if isinstance(statement, ast.If):
            then_block = builder.new_block("then")
            join_block = builder.new_block("endif")
            else_block = join_block
            if statement.els is not None:
                else_block = builder.new_block("else")
            self.lower_condition(statement.cond, env, then_block, else_block)
            builder.set_block(then_block)
            self.lower_block(statement.then, env)
            if not builder.terminated:
                builder.br(join_block)
            if statement.els is not None:
                builder.set_block(else_block)
                self.lower_block(statement.els, env)
                if not builder.terminated:
                    builder.br(join_block)
            builder.set_block(join_block)
            return

        if isinstance(statement, ast.While):
            cond_block = builder.new_block("wcond")
            body_block = builder.new_block("wbody")
            exit_block = builder.new_block("wend")
            builder.br(cond_block)
            builder.set_block(cond_block)
            self.lower_condition(statement.cond, env, body_block, exit_block)
            builder.set_block(body_block)
            self.loop_targets.append((exit_block, cond_block))
            self.lower_block(statement.body, env)
            self.loop_targets.pop()
            if not builder.terminated:
                builder.br(cond_block)
            builder.set_block(exit_block)
            return

        if isinstance(statement, ast.For):
            if statement.init is not None:
                self._lower_assign(statement.init, env)
            cond_block = builder.new_block("fcond")
            body_block = builder.new_block("fbody")
            step_block = builder.new_block("fstep")
            exit_block = builder.new_block("fend")
            builder.br(cond_block)
            builder.set_block(cond_block)
            if statement.cond is not None:
                self.lower_condition(statement.cond, env, body_block, exit_block)
            else:
                builder.br(body_block)
            builder.set_block(body_block)
            self.loop_targets.append((exit_block, step_block))
            self.lower_block(statement.body, env)
            self.loop_targets.pop()
            if not builder.terminated:
                builder.br(step_block)
            builder.set_block(step_block)
            if statement.step is not None:
                self._lower_assign(statement.step, env)
            builder.br(cond_block)
            builder.set_block(exit_block)
            return

        if isinstance(statement, ast.Return):
            if statement.value is not None:
                builder.ret(self.eval_expr(statement.value, env))
            else:
                builder.ret(None)
            return

        if isinstance(statement, ast.Break):
            builder.br(self.loop_targets[-1][0])
            return

        if isinstance(statement, ast.Continue):
            builder.br(self.loop_targets[-1][1])
            return

        if isinstance(statement, ast.ExprStmt):
            expr = statement.expr
            if isinstance(expr, ast.CallE):
                arguments = [self.eval_expr(arg, env) for arg in expr.args]
                builder.call(expr.name, arguments, returns_value=False)
            else:
                self.eval_expr(expr, env)
            return

        if isinstance(statement, ast.BlockStmt):
            self.lower_block(statement, env)
            return

        raise CompileError(f"unknown statement {statement!r}")  # pragma: no cover

    def lower(self) -> None:
        builder = self.builder
        entry = builder.new_block("entry")
        builder.set_block(entry)
        env = _Env(self.module_env)
        for param, declaration in zip(builder.params, self.declaration.params):
            env.bind(declaration.name, ("reg", param))
        self.lower_block(self.declaration.body, env)
        if not builder.terminated:
            if self.declaration.returns_value:
                builder.ret(0)
            else:
                builder.ret(None)
        # Hoist local-array allocations to the top of the entry block.
        if self.entry_allocas:
            entry_block = builder.function.entry
            entry_block.instrs = self.entry_allocas + entry_block.instrs


def lower_program(program: ast.ProgramAst) -> Module:
    """Lower a semantically checked AST into an IR module."""
    module_builder = ModuleBuilder()
    module_env = _Env()
    for declaration in program.globals:
        symbol = module_builder.global_array(
            declaration.name, declaration.words, declaration.init,
            immutable=declaration.const,
        )
        kind = "gscalar" if declaration.size is None else "garray"
        module_env.bind(declaration.name, (kind, symbol))
    for function in program.functions:
        builder = module_builder.function(
            function.name, [param.name + "_" for param in function.params]
        )
        _FunctionLowerer(function, module_env, builder).lower()
    return module_builder.build()
