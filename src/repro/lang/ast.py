"""MiniC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- expressions ----------------------------------------------------------

@dataclass
class Num:
    value: int
    line: int = 0


@dataclass
class Ident:
    name: str
    line: int = 0


@dataclass
class Index:
    name: str
    index: "Expr"
    line: int = 0


@dataclass
class Unary:
    op: str                     # "-", "!", "~"
    operand: "Expr"
    line: int = 0


@dataclass
class Bin:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass
class CallE:
    name: str
    args: List["Expr"]
    line: int = 0


Expr = Union[Num, Ident, Index, Unary, Bin, CallE]


# -- statements ------------------------------------------------------------

@dataclass
class VarDecl:
    name: str
    init: Optional[Expr]
    line: int = 0


@dataclass
class ArrayDecl:
    name: str
    size: int
    line: int = 0


@dataclass
class Assign:
    target: Union[Ident, Index]
    op: Optional[str]           # None for '=', else '+', '-', '*', ...
    value: Expr
    line: int = 0


@dataclass
class If:
    cond: Expr
    then: "BlockStmt"
    els: Optional["BlockStmt"]
    line: int = 0


@dataclass
class While:
    cond: Expr
    body: "BlockStmt"
    line: int = 0


@dataclass
class For:
    init: Optional[Assign]
    cond: Optional[Expr]
    step: Optional[Assign]
    body: "BlockStmt"
    #: 0 = no unrolling, -1 = full unroll, k>1 = unroll factor k.
    unroll: int = 0
    line: int = 0


@dataclass
class Return:
    value: Optional[Expr]
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


@dataclass
class ExprStmt:
    expr: Expr
    line: int = 0


@dataclass
class BlockStmt:
    statements: List["Stmt"] = field(default_factory=list)
    line: int = 0


Stmt = Union[
    VarDecl, ArrayDecl, Assign, If, While, For, Return, Break, Continue,
    ExprStmt, BlockStmt,
]


# -- top level ----------------------------------------------------------------

@dataclass
class GlobalDecl:
    name: str
    #: None for a scalar; array size otherwise.
    size: Optional[int]
    init: Tuple[int, ...] = ()
    #: Declared const: stores are rejected and loads of constant indices
    #: fold to immediates.
    const: bool = False
    line: int = 0

    @property
    def words(self) -> int:
        return 1 if self.size is None else self.size


@dataclass
class Param:
    name: str
    line: int = 0


@dataclass
class FuncDecl:
    name: str
    params: List[Param]
    body: BlockStmt
    returns_value: bool = True
    line: int = 0


@dataclass
class ProgramAst:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)
