"""MiniC lexer."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CompileError

KEYWORDS = {
    "int", "void", "if", "else", "while", "for",
    "return", "break", "continue", "unroll", "const",
}

#: Multi-character operators, longest first.
_OPERATORS = [
    ">>>=", "<<=", ">>=", ">>>", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ",", ";",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str          # "num" | "ident" | "kw" | "op" | "eof"
    text: str
    value: int = 0
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return self.text or self.kind


def tokenize(source: str) -> List[Token]:
    """Tokenise MiniC source; raises :class:`CompileError` on bad input."""
    tokens: List[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise CompileError(
                f"unexpected character {source[position]!r}", line, column
            )
        text = match.group(0)
        column = position - line_start + 1
        kind = match.lastgroup
        if kind == "num":
            tokens.append(Token("num", text, int(text, 0), line, column))
        elif kind == "ident":
            token_kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(token_kind, text, 0, line, column))
        elif kind == "op":
            if text == ">>>=":
                raise CompileError("'>>>=' is not supported", line, column)
            tokens.append(Token("op", text, 0, line, column))
        # whitespace and comments advance position/line only
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    tokens.append(Token("eof", "", 0, line, 1))
    return tokens
