"""Semantic analysis for MiniC.

Checks performed before lowering:

* duplicate global / function / local names;
* every identifier is declared before use;
* array names are not assignment targets and are only *read* as their
  base address (C-style decay — this is how MiniC passes buffers);
* calls reference declared functions with matching arity, and the
  result of a ``void`` function is never used as a value;
* ``break``/``continue`` appear only inside loops;
* ``return`` with/without a value matches the function's type.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import CompileError
from repro.lang import ast


class _FuncInfo:
    def __init__(self, declaration: ast.FuncDecl):
        self.name = declaration.name
        self.arity = len(declaration.params)
        self.returns_value = declaration.returns_value


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, str] = {}  # name -> "scalar" | "array"

    def declare(self, name: str, kind: str, line: int) -> None:
        if name in self.names:
            raise CompileError(f"duplicate declaration of {name!r}", line)
        self.names[name] = kind

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Checker:
    def __init__(self, program: ast.ProgramAst):
        self.program = program
        self.functions: Dict[str, _FuncInfo] = {}
        self.global_scope = _Scope()
        self.const_globals: Set[str] = set()
        self.loop_depth = 0
        self.current: Optional[ast.FuncDecl] = None

    def run(self) -> None:
        for declaration in self.program.globals:
            kind = "array" if declaration.size is not None else "scalar"
            if len(declaration.init) > declaration.words:
                raise CompileError(
                    f"too many initialisers for {declaration.name!r}",
                    declaration.line,
                )
            self.global_scope.declare(declaration.name, kind, declaration.line)
            if declaration.const:
                self.const_globals.add(declaration.name)
        for function in self.program.functions:
            if function.name in self.functions:
                raise CompileError(
                    f"duplicate function {function.name!r}", function.line
                )
            if self.global_scope.lookup(function.name):
                raise CompileError(
                    f"{function.name!r} is both a global and a function",
                    function.line,
                )
            self.functions[function.name] = _FuncInfo(function)
        for function in self.program.functions:
            self._check_function(function)

    def _check_function(self, function: ast.FuncDecl) -> None:
        self.current = function
        scope = _Scope(self.global_scope)
        seen: Set[str] = set()
        for param in function.params:
            if param.name in seen:
                raise CompileError(
                    f"duplicate parameter {param.name!r}", param.line
                )
            seen.add(param.name)
            scope.declare(param.name, "scalar", param.line)
        self._check_block(function.body, scope)
        self.current = None

    def _check_block(self, block: ast.BlockStmt, parent: _Scope) -> None:
        scope = _Scope(parent)
        for statement in block.statements:
            self._check_stmt(statement, scope)

    def _check_stmt(self, statement: ast.Stmt, scope: _Scope) -> None:
        if isinstance(statement, ast.VarDecl):
            if statement.init is not None:
                self._check_expr(statement.init, scope)
            scope.declare(statement.name, "scalar", statement.line)
        elif isinstance(statement, ast.ArrayDecl):
            scope.declare(statement.name, "array", statement.line)
        elif isinstance(statement, ast.Assign):
            self._check_expr(statement.value, scope)
            target = statement.target
            if target.name in self.const_globals and \
                    scope.lookup(target.name) is not None and \
                    self.global_scope.lookup(target.name) == \
                    scope.lookup(target.name):
                # Only an error when the name still resolves to the
                # const global (a local may shadow it).
                if not self._shadowed(target.name, scope):
                    raise CompileError(
                        f"cannot assign to const global {target.name!r}",
                        target.line,
                    )
            if isinstance(target, ast.Ident):
                kind = scope.lookup(target.name)
                if kind is None:
                    raise CompileError(
                        f"assignment to undeclared {target.name!r}",
                        target.line,
                    )
                if kind == "array":
                    raise CompileError(
                        f"cannot assign to array {target.name!r}", target.line
                    )
            else:
                if scope.lookup(target.name) is None:
                    raise CompileError(
                        f"use of undeclared {target.name!r}", target.line
                    )
                self._check_expr(target.index, scope)
        elif isinstance(statement, ast.If):
            self._check_expr(statement.cond, scope)
            self._check_block(statement.then, scope)
            if statement.els is not None:
                self._check_block(statement.els, scope)
        elif isinstance(statement, ast.While):
            self._check_expr(statement.cond, scope)
            self.loop_depth += 1
            self._check_block(statement.body, scope)
            self.loop_depth -= 1
        elif isinstance(statement, ast.For):
            # The for-header's induction assignments live in the parent
            # scope (MiniC has no for-scoped declarations).
            if statement.init is not None:
                self._check_stmt(statement.init, scope)
            if statement.cond is not None:
                self._check_expr(statement.cond, scope)
            if statement.step is not None:
                self._check_stmt(statement.step, scope)
            self.loop_depth += 1
            self._check_block(statement.body, scope)
            self.loop_depth -= 1
        elif isinstance(statement, ast.Return):
            assert self.current is not None
            if statement.value is not None:
                if not self.current.returns_value:
                    raise CompileError(
                        f"void function {self.current.name!r} returns a value",
                        statement.line,
                    )
                self._check_expr(statement.value, scope)
            elif self.current.returns_value:
                raise CompileError(
                    f"function {self.current.name!r} must return a value",
                    statement.line,
                )
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                keyword = "break" if isinstance(statement, ast.Break) else "continue"
                raise CompileError(f"{keyword} outside a loop", statement.line)
        elif isinstance(statement, ast.ExprStmt):
            self._check_expr(statement.expr, scope, value_needed=False)
        elif isinstance(statement, ast.BlockStmt):
            self._check_block(statement, scope)
        else:  # pragma: no cover - defensive
            raise CompileError(f"unknown statement {statement!r}")

    def _shadowed(self, name: str, scope: _Scope) -> bool:
        walker: Optional[_Scope] = scope
        while walker is not None and walker is not self.global_scope:
            if name in walker.names:
                return True
            walker = walker.parent
        return False

    def _check_expr(self, expr: ast.Expr, scope: _Scope,
                    value_needed: bool = True) -> None:
        if isinstance(expr, ast.Num):
            return
        if isinstance(expr, ast.Ident):
            if scope.lookup(expr.name) is None:
                raise CompileError(f"use of undeclared {expr.name!r}", expr.line)
            return
        if isinstance(expr, ast.Index):
            if scope.lookup(expr.name) is None:
                raise CompileError(f"use of undeclared {expr.name!r}", expr.line)
            self._check_expr(expr.index, scope)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand, scope)
            return
        if isinstance(expr, ast.Bin):
            self._check_expr(expr.left, scope)
            self._check_expr(expr.right, scope)
            return
        if isinstance(expr, ast.CallE):
            info = self.functions.get(expr.name)
            if info is None:
                raise CompileError(f"call to undeclared {expr.name!r}", expr.line)
            if len(expr.args) != info.arity:
                raise CompileError(
                    f"{expr.name} expects {info.arity} argument(s), got "
                    f"{len(expr.args)}",
                    expr.line,
                )
            if value_needed and not info.returns_value:
                raise CompileError(
                    f"void function {expr.name!r} used as a value", expr.line
                )
            for argument in expr.args:
                self._check_expr(argument, scope)
            return
        raise CompileError(f"unknown expression {expr!r}")  # pragma: no cover


def check_program(program: ast.ProgramAst) -> None:
    """Run semantic analysis; raises :class:`CompileError` on problems."""
    _Checker(program).run()
