"""The MiniC front-end pipeline (IMPACT's role): parse -> check ->
unroll -> lower -> machine-independent optimisation."""

from __future__ import annotations

from repro.ir.module import Module
from repro.ir.passes import optimize_module
from repro.ir.verify import verify_module
from repro.lang.lower import lower_program
from repro.lang.parser import parse_program
from repro.lang.sema import check_program
from repro.lang.unroll import unroll_program


def frontend(source: str, unroll: bool = True) -> Module:
    """Parse, check and lower MiniC source to (unoptimised) IR."""
    program = parse_program(source)
    check_program(program)
    program = unroll_program(program, enabled=unroll)
    module = lower_program(program)
    verify_module(module)
    return module


def compile_minic(source: str, unroll: bool = True,
                  optimize: bool = True) -> Module:
    """Compile MiniC source to optimised IR.

    ``unroll`` honours or strips the ``unroll`` annotations (the EPIC
    backend wants them; they can be disabled to measure their effect —
    ablation A5).
    """
    module = frontend(source, unroll)
    if optimize:
        optimize_module(module)
    return module
