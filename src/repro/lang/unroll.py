"""AST-level loop unrolling — the toolchain's ILP-exposing transform.

EPIC performance lives and dies by the parallelism the compiler can
expose statically (paper §2, §4.1).  MiniC surfaces the classic loop
unrolling transformation as an explicit annotation::

    unroll for (i = 0; i < 8; i += 1) ...      // full unroll
    unroll(4) for (i = 0; i < n; i += 1) ...   // unroll by 4 + epilogue

The loop must be canonical: the induction variable is initialised in the
header, compared against a limit with ``< <= > >=``, stepped by a
constant, and not assigned in the body; the body contains no ``break``/
``continue``; partial unrolling of non-constant bounds additionally
requires that the body not assign variables used by the limit
expression.  Violations raise :class:`~repro.errors.CompileError` — an
explicit annotation deserves an explicit failure.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.errors import CompileError
from repro.lang import ast

#: Safety cap on fully unrolled iterations.
MAX_FULL_UNROLL = 4096


# -- AST utilities ---------------------------------------------------------

def _assigned_names(statements: List[ast.Stmt]) -> Set[str]:
    names: Set[str] = set()

    def visit(statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Assign):
            names.add(statement.target.name)
        elif isinstance(statement, ast.VarDecl):
            names.add(statement.name)
        elif isinstance(statement, ast.If):
            for child in statement.then.statements:
                visit(child)
            if statement.els is not None:
                for child in statement.els.statements:
                    visit(child)
        elif isinstance(statement, ast.While):
            for child in statement.body.statements:
                visit(child)
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                visit(statement.init)
            if statement.step is not None:
                visit(statement.step)
            for child in statement.body.statements:
                visit(child)
        elif isinstance(statement, ast.BlockStmt):
            for child in statement.statements:
                visit(child)

    for statement in statements:
        visit(statement)
    return names


def _used_names(expr: ast.Expr) -> Set[str]:
    names: Set[str] = set()

    def visit(node: ast.Expr) -> None:
        if isinstance(node, ast.Ident):
            names.add(node.name)
        elif isinstance(node, ast.Index):
            names.add(node.name)
            visit(node.index)
        elif isinstance(node, ast.Unary):
            visit(node.operand)
        elif isinstance(node, ast.Bin):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.CallE):
            for argument in node.args:
                visit(argument)

    visit(expr)
    return names


def _contains_break_or_continue(statements: List[ast.Stmt]) -> bool:
    """True if a break/continue binds to *this* loop level."""

    def visit(statement: ast.Stmt) -> bool:
        if isinstance(statement, (ast.Break, ast.Continue)):
            return True
        if isinstance(statement, ast.If):
            children = list(statement.then.statements)
            if statement.els is not None:
                children += statement.els.statements
            return any(visit(child) for child in children)
        if isinstance(statement, ast.BlockStmt):
            return any(visit(child) for child in statement.statements)
        # While/For introduce a new loop level: their break/continue
        # bind inward and do not block unrolling of the outer loop.
        return False

    return any(visit(statement) for statement in statements)


def _subst_expr(expr: ast.Expr, name: str, replacement: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.Num):
        return expr
    if isinstance(expr, ast.Ident):
        return copy.deepcopy(replacement) if expr.name == name else expr
    if isinstance(expr, ast.Index):
        return ast.Index(expr.name, _subst_expr(expr.index, name, replacement),
                         expr.line)
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _subst_expr(expr.operand, name, replacement),
                         expr.line)
    if isinstance(expr, ast.Bin):
        return ast.Bin(
            expr.op,
            _subst_expr(expr.left, name, replacement),
            _subst_expr(expr.right, name, replacement),
            expr.line,
        )
    if isinstance(expr, ast.CallE):
        return ast.CallE(
            expr.name,
            [_subst_expr(argument, name, replacement) for argument in expr.args],
            expr.line,
        )
    raise CompileError(f"cannot substitute into {expr!r}")  # pragma: no cover


def _subst_stmt(statement: ast.Stmt, name: str,
                replacement: ast.Expr) -> ast.Stmt:
    if isinstance(statement, ast.Assign):
        target = statement.target
        if isinstance(target, ast.Index):
            target = ast.Index(
                target.name, _subst_expr(target.index, name, replacement),
                target.line,
            )
        return ast.Assign(
            target, statement.op,
            _subst_expr(statement.value, name, replacement), statement.line,
        )
    if isinstance(statement, ast.VarDecl):
        init = None
        if statement.init is not None:
            init = _subst_expr(statement.init, name, replacement)
        return ast.VarDecl(statement.name, init, statement.line)
    if isinstance(statement, ast.ArrayDecl):
        return statement
    if isinstance(statement, ast.If):
        els = None
        if statement.els is not None:
            els = _subst_block(statement.els, name, replacement)
        return ast.If(
            _subst_expr(statement.cond, name, replacement),
            _subst_block(statement.then, name, replacement),
            els, statement.line,
        )
    if isinstance(statement, ast.While):
        return ast.While(
            _subst_expr(statement.cond, name, replacement),
            _subst_block(statement.body, name, replacement),
            statement.line,
        )
    if isinstance(statement, ast.For):
        init = statement.init
        if init is not None:
            init = _subst_stmt(init, name, replacement)
        step = statement.step
        if step is not None:
            step = _subst_stmt(step, name, replacement)
        cond = statement.cond
        if cond is not None:
            cond = _subst_expr(cond, name, replacement)
        return ast.For(
            init, cond, step,
            _subst_block(statement.body, name, replacement),
            statement.unroll, statement.line,
        )
    if isinstance(statement, ast.Return):
        value = None
        if statement.value is not None:
            value = _subst_expr(statement.value, name, replacement)
        return ast.Return(value, statement.line)
    if isinstance(statement, (ast.Break, ast.Continue)):
        return statement
    if isinstance(statement, ast.ExprStmt):
        return ast.ExprStmt(
            _subst_expr(statement.expr, name, replacement), statement.line
        )
    if isinstance(statement, ast.BlockStmt):
        return _subst_block(statement, name, replacement)
    raise CompileError(f"cannot substitute into {statement!r}")  # pragma: no cover


def _subst_block(block: ast.BlockStmt, name: str,
                 replacement: ast.Expr) -> ast.BlockStmt:
    return ast.BlockStmt(
        [_subst_stmt(child, name, replacement) for child in block.statements],
        block.line,
    )


# -- canonical-loop analysis -----------------------------------------------

@dataclass
class _LoopShape:
    ivar: str
    init: ast.Expr
    cmp_op: str
    limit: ast.Expr
    step: int


def _const_of(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_of(expr.operand)
        return None if inner is None else -inner
    return None


def _loop_shape(loop: ast.For) -> _LoopShape:
    line = loop.line
    if loop.init is None or loop.cond is None or loop.step is None:
        raise CompileError("unroll requires a complete for-header", line)
    if not isinstance(loop.init.target, ast.Ident) or loop.init.op is not None:
        raise CompileError(
            "unroll requires 'i = <expr>' initialisation", line
        )
    ivar = loop.init.target.name

    cond = loop.cond
    if not (isinstance(cond, ast.Bin) and cond.op in ("<", "<=", ">", ">=")):
        raise CompileError("unroll requires 'i <op> limit' condition", line)
    if not (isinstance(cond.left, ast.Ident) and cond.left.name == ivar):
        raise CompileError(
            "unroll requires the induction variable on the condition's left",
            line,
        )

    step = loop.step
    if not (isinstance(step.target, ast.Ident) and step.target.name == ivar):
        raise CompileError("unroll requires the step to assign the induction "
                           "variable", line)
    delta: Optional[int] = None
    if step.op in ("+", "-"):
        constant = _const_of(step.value)
        if constant is not None:
            delta = constant if step.op == "+" else -constant
    elif step.op is None and isinstance(step.value, ast.Bin):
        inner = step.value
        if inner.op in ("+", "-") and isinstance(inner.left, ast.Ident) \
                and inner.left.name == ivar:
            constant = _const_of(inner.right)
            if constant is not None:
                delta = constant if inner.op == "+" else -constant
    if delta is None or delta == 0:
        raise CompileError("unroll requires a non-zero constant step", line)

    if _contains_break_or_continue(loop.body.statements):
        raise CompileError("cannot unroll a loop containing break/continue",
                           line)
    assigned = _assigned_names(loop.body.statements)
    if ivar in assigned:
        raise CompileError(
            f"cannot unroll: body assigns induction variable {ivar!r}", line
        )
    return _LoopShape(ivar, loop.init.value, cond.op, cond.right, delta)


def _trip_values(shape: _LoopShape, line: int) -> List[int]:
    start = _const_of(shape.init)
    limit = _const_of(shape.limit)
    if start is None or limit is None:
        raise CompileError(
            "full unroll requires constant bounds", line
        )
    values: List[int] = []
    current = start
    while True:
        if shape.cmp_op == "<" and not current < limit:
            break
        if shape.cmp_op == "<=" and not current <= limit:
            break
        if shape.cmp_op == ">" and not current > limit:
            break
        if shape.cmp_op == ">=" and not current >= limit:
            break
        values.append(current)
        current += shape.step
        if len(values) > MAX_FULL_UNROLL:
            raise CompileError(
                f"loop exceeds the {MAX_FULL_UNROLL}-iteration unroll cap",
                line,
            )
    return values


# -- the transformation -------------------------------------------------------

def _expand_iteration(body: ast.BlockStmt, ivar: str,
                      value_expr: ast.Expr) -> List[ast.Stmt]:
    return list(_subst_block(body, ivar, value_expr).statements)


def _unroll_for(loop: ast.For) -> List[ast.Stmt]:
    shape = _loop_shape(loop)
    line = loop.line
    body = loop.body

    start = _const_of(shape.init)
    limit = _const_of(shape.limit)

    if loop.unroll == -1 or (start is not None and limit is not None):
        values = _trip_values(shape, line)
        factor = len(values) if loop.unroll == -1 else loop.unroll
        result: List[ast.Stmt] = []
        if loop.unroll == -1 or factor >= len(values):
            for value in values:
                result.extend(_expand_iteration(body, shape.ivar,
                                                ast.Num(value, line)))
        else:
            chunks, leftover = divmod(len(values), factor)
            if chunks:
                chunk_step = shape.step * factor
                last_start = values[0] + (chunks - 1) * chunk_step
                unrolled_body: List[ast.Stmt] = []
                for j in range(factor):
                    offset = j * shape.step
                    value_expr: ast.Expr = ast.Ident(shape.ivar, line)
                    if offset:
                        value_expr = ast.Bin(
                            "+", ast.Ident(shape.ivar, line),
                            ast.Num(offset, line), line,
                        )
                    unrolled_body.extend(
                        _expand_iteration(body, shape.ivar, value_expr)
                    )
                step_assign = ast.Assign(
                    ast.Ident(shape.ivar, line), "+",
                    ast.Num(chunk_step, line), line,
                )
                cmp_op = "<=" if chunk_step > 0 else ">="
                result.append(ast.For(
                    init=ast.Assign(ast.Ident(shape.ivar, line), None,
                                    ast.Num(values[0], line), line),
                    cond=ast.Bin(cmp_op, ast.Ident(shape.ivar, line),
                                 ast.Num(last_start, line), line),
                    step=step_assign,
                    body=ast.BlockStmt(unrolled_body, line),
                    unroll=0, line=line,
                ))
            for value in values[len(values) - leftover:]:
                result.extend(_expand_iteration(body, shape.ivar,
                                                ast.Num(value, line)))
        # Leave the induction variable at its final value.
        final = (values[-1] + shape.step) if values else start
        result.append(ast.Assign(ast.Ident(shape.ivar, line), None,
                                 ast.Num(final, line), line))
        return result

    # Non-constant bounds: partial unroll of an upward-counting '<'/'<='
    # loop, with a scalar epilogue loop.
    factor = loop.unroll
    if shape.cmp_op not in ("<", "<=") or shape.step <= 0:
        raise CompileError(
            "partial unroll of non-constant bounds requires an "
            "upward-counting '<' or '<=' loop",
            line,
        )
    limit_names = _used_names(shape.limit)
    if limit_names & _assigned_names(body.statements):
        raise CompileError(
            "cannot unroll: body assigns variables used by the loop limit",
            line,
        )

    lookahead = (factor - 1) * shape.step
    guard = ast.Bin(
        shape.cmp_op,
        ast.Bin("+", ast.Ident(shape.ivar, line), ast.Num(lookahead, line),
                line),
        copy.deepcopy(shape.limit),
        line,
    )
    unrolled_body: List[ast.Stmt] = []
    for j in range(factor):
        offset = j * shape.step
        value_expr = ast.Ident(shape.ivar, line)
        if offset:
            value_expr = ast.Bin("+", ast.Ident(shape.ivar, line),
                                 ast.Num(offset, line), line)
        unrolled_body.extend(_expand_iteration(body, shape.ivar, value_expr))
    main_loop = ast.For(
        init=ast.Assign(ast.Ident(shape.ivar, line), None,
                        copy.deepcopy(shape.init), line),
        cond=guard,
        step=ast.Assign(ast.Ident(shape.ivar, line), "+",
                        ast.Num(factor * shape.step, line), line),
        body=ast.BlockStmt(unrolled_body, line),
        unroll=0, line=line,
    )
    epilogue = ast.For(
        init=None,
        cond=copy.deepcopy(loop.cond),
        step=copy.deepcopy(loop.step),
        body=copy.deepcopy(body),
        unroll=0, line=line,
    )
    return [main_loop, epilogue]


# -- recursive walk --------------------------------------------------------------

def _walk_block(block: ast.BlockStmt, enabled: bool) -> ast.BlockStmt:
    result: List[ast.Stmt] = []
    for statement in block.statements:
        result.extend(_walk_stmt(statement, enabled))
    return ast.BlockStmt(result, block.line)


def _walk_stmt(statement: ast.Stmt, enabled: bool) -> List[ast.Stmt]:
    if isinstance(statement, ast.If):
        els = None
        if statement.els is not None:
            els = _walk_block(statement.els, enabled)
        return [ast.If(statement.cond, _walk_block(statement.then, enabled),
                       els, statement.line)]
    if isinstance(statement, ast.While):
        return [ast.While(statement.cond,
                          _walk_block(statement.body, enabled),
                          statement.line)]
    if isinstance(statement, ast.For):
        inner = ast.For(
            statement.init, statement.cond, statement.step,
            _walk_block(statement.body, enabled),
            statement.unroll, statement.line,
        )
        if enabled and inner.unroll != 0:
            return _unroll_for(inner)
        if not enabled:
            inner.unroll = 0
        return [inner]
    if isinstance(statement, ast.BlockStmt):
        return [_walk_block(statement, enabled)]
    return [statement]


def unroll_program(program: ast.ProgramAst,
                   enabled: bool = True) -> ast.ProgramAst:
    """Apply (or strip, when disabled) all unroll annotations."""
    functions = [
        ast.FuncDecl(
            function.name, function.params,
            _walk_block(function.body, enabled),
            function.returns_value, function.line,
        )
        for function in program.functions
    ]
    return ast.ProgramAst(list(program.globals), functions)
