"""Dead-code elimination.

Removes instructions whose results are never used anywhere in the
function and which have no side effects.  Iterates to a fixpoint so that
chains of dead computations collapse.  ``Alloca`` is treated as pure —
an unused frame allocation can be dropped.
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import Load
from repro.ir.module import Function
from repro.ir.values import VReg


def eliminate_dead_code(function: Function) -> int:
    removed_total = 0
    while True:
        used: Set[VReg] = set()
        for instr in function.instructions():
            for value in instr.uses():
                if isinstance(value, VReg):
                    used.add(value)

        removed = 0
        for block in function.blocks:
            kept = []
            for instr in block.instrs:
                defs = instr.defs()
                is_dead = (
                    defs
                    and not instr.has_side_effects
                    and not instr.is_terminator
                    and all(reg not in used for reg in defs)
                )
                # A dead non-speculative load could still fault; removing
                # it is the usual compiler licence (the address was
                # computed by well-defined source), and it keeps parity
                # with what IMPACT-style dead-code removal does.
                if is_dead:
                    removed += 1
                else:
                    kept.append(instr)
            block.instrs = kept
        removed_total += removed
        if removed == 0:
            return removed_total
