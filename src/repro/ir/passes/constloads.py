"""Folding of loads from immutable globals at constant offsets.

A ``const`` MiniC table (S-boxes, cosine bases, round constants) whose
index becomes a compile-time constant — typically after loop unrolling —
turns into an immediate, removing the load entirely.  On the EPIC core
this relieves the single load/store unit, which is what lets the
multiply-rich kernels scale with ALU count (the paper's DCT behaviour);
on a table-driven workload like AES the indices are data-dependent, the
loads stay, and adding ALUs does not help — also exactly the paper's
observation (§5.2).
"""

from __future__ import annotations

from repro.ir.instructions import Copy, Load
from repro.ir.module import Function, Module
from repro.ir.values import Const, Sym
from repro.isa.semantics import to_signed


def fold_const_loads(function: Function, module: Module) -> int:
    """Rewrite foldable loads in place; returns the number folded."""
    rewrites = 0
    for block in function.blocks:
        for index, instr in enumerate(block.instrs):
            if not isinstance(instr, Load) or instr.speculative:
                continue
            base, offset = instr.base, instr.offset
            if isinstance(base, Const) and isinstance(offset, Sym):
                base, offset = offset, base
            if not (isinstance(base, Sym) and isinstance(offset, Const)):
                continue
            array = module.globals.get(base.name)
            if array is None or not array.immutable:
                continue
            word = base.offset + offset.value
            if not 0 <= word < array.size:
                continue  # out of range: leave it to fault at run time
            value = array.init[word] if word < len(array.init) else 0
            block.instrs[index] = Copy(
                instr.dst, Const(to_signed(value, 32))
            )
            rewrites += 1
    return rewrites
