"""Control-flow simplification.

* constant-condition branches become unconditional;
* branches with identical arms become unconditional;
* jump threading: a branch to a block containing only ``br X`` is
  retargeted to ``X``;
* unreachable blocks are deleted;
* a block with a unique successor whose successor has a unique
  predecessor is merged into it.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.instructions import Br, CondBr, Instr, Ret
from repro.ir.module import Block, Function
from repro.ir.values import Const


def _thread_target(function: Function, name: str, limit: int = 8) -> str:
    """Follow chains of trivial forwarding blocks."""
    seen = set()
    for _ in range(limit):
        block = function.block(name)
        if len(block.instrs) == 1 and isinstance(block.instrs[0], Br):
            target = block.instrs[0].target
            if target == name or target in seen:
                return name  # self loop or cycle of empties: leave it
            seen.add(name)
            name = target
        else:
            return name
    return name


def simplify_cfg(function: Function) -> int:
    changes = 0

    # Fold constant and degenerate conditional branches; thread jumps.
    for block in function.blocks:
        term = block.terminator
        if isinstance(term, CondBr):
            if isinstance(term.cond, Const):
                target = term.if_true if term.cond.value != 0 else term.if_false
                block.instrs[-1] = Br(target)
                changes += 1
            elif term.if_true == term.if_false:
                block.instrs[-1] = Br(term.if_true)
                changes += 1
        term = block.terminator
        if isinstance(term, Br):
            threaded = _thread_target(function, term.target)
            if threaded != term.target:
                term.target = threaded
                changes += 1
        elif isinstance(term, CondBr):
            for attr in ("if_true", "if_false"):
                threaded = _thread_target(function, getattr(term, attr))
                if threaded != getattr(term, attr):
                    setattr(term, attr, threaded)
                    changes += 1

    # Remove unreachable blocks.
    reachable: Set[str] = set()
    stack = [function.entry.name]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        stack.extend(function.block(name).successors())
    before = len(function.blocks)
    function.blocks = [
        block for block in function.blocks if block.name in reachable
    ]
    changes += before - len(function.blocks)

    # Merge straight-line pairs.
    merged = True
    while merged:
        merged = False
        preds = function.predecessors()
        for block in function.blocks:
            term = block.terminator
            if not isinstance(term, Br):
                continue
            succ_name = term.target
            if succ_name == block.name:
                continue
            if len(preds[succ_name]) != 1:
                continue
            if succ_name == function.entry.name:
                continue
            successor = function.block(succ_name)
            block.instrs = block.instrs[:-1] + successor.instrs
            function.blocks.remove(successor)
            changes += 1
            merged = True
            break
    return changes
