"""Constant folding, algebraic simplification and strength reduction."""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.ir.instructions import BinOp, Cmp, Copy, Instr
from repro.ir.module import Function
from repro.ir.values import Const, Value
from repro.isa.semantics import ALU_SEMANTICS, CMP_SEMANTICS, to_signed

_BIN_TO_SEM = {
    "add": "ADD", "sub": "SUB", "mul": "MUL", "div": "DIV", "rem": "REM",
    "and": "AND", "or": "OR", "xor": "XOR",
    "shl": "SHL", "shr": "SHR", "shra": "SHRA",
}
_CMP_TO_SEM = {
    "eq": "CMPP_EQ", "ne": "CMPP_NE", "lt": "CMPP_LT", "le": "CMPP_LE",
    "gt": "CMPP_GT", "ge": "CMPP_GE", "ult": "CMPP_ULT", "uge": "CMPP_UGE",
}
_WIDTH = 32
_MASK = 0xFFFFFFFF


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _fold_binop(instr: BinOp) -> Optional[Instr]:
    a, b = instr.a, instr.b
    a_const = a.value & _MASK if isinstance(a, Const) else None
    b_const = b.value & _MASK if isinstance(b, Const) else None

    if a_const is not None and b_const is not None:
        try:
            value = ALU_SEMANTICS[_BIN_TO_SEM[instr.op]](a_const, b_const, _WIDTH)
        except SimulationError:
            return None  # division by zero: leave it to trap at run time
        return Copy(instr.dst, Const(to_signed(value, _WIDTH)))

    op = instr.op
    # Identity elements.
    if b_const == 0 and op in ("add", "sub", "or", "xor", "shl", "shr", "shra"):
        return Copy(instr.dst, a)
    if a_const == 0 and op in ("add", "or", "xor"):
        return Copy(instr.dst, b)
    if b_const == 1 and op in ("mul", "div"):
        return Copy(instr.dst, a)
    if a_const == 1 and op == "mul":
        return Copy(instr.dst, b)
    # Annihilators (operands are pure values, so dropping them is safe).
    if 0 in (a_const, b_const) and op == "and":
        return Copy(instr.dst, Const(0))
    if b_const == 0 and op == "mul" or a_const == 0 and op == "mul":
        return Copy(instr.dst, Const(0))
    if b_const == 1 and op == "rem":
        return Copy(instr.dst, Const(0))
    if b_const == _MASK and op == "and":
        return Copy(instr.dst, a)
    # Strength reduction: multiply by a power of two becomes a shift.
    if op == "mul" and b_const is not None and _is_power_of_two(b_const):
        return BinOp("shl", instr.dst, a, Const(b_const.bit_length() - 1))
    if op == "mul" and a_const is not None and _is_power_of_two(a_const):
        return BinOp("shl", instr.dst, b, Const(a_const.bit_length() - 1))
    return None


def _fold_cmp(instr: Cmp) -> Optional[Instr]:
    if isinstance(instr.a, Const) and isinstance(instr.b, Const):
        value = CMP_SEMANTICS[_CMP_TO_SEM[instr.op]](
            instr.a.value & _MASK, instr.b.value & _MASK, _WIDTH
        )
        return Copy(instr.dst, Const(value))
    return None


def fold_constants(function: Function) -> int:
    """Fold constants in place; returns the number of rewrites."""
    rewrites = 0
    for block in function.blocks:
        for index, instr in enumerate(block.instrs):
            replacement = None
            if isinstance(instr, BinOp):
                replacement = _fold_binop(instr)
            elif isinstance(instr, Cmp):
                replacement = _fold_cmp(instr)
            if replacement is not None:
                block.instrs[index] = replacement
                rewrites += 1
    return rewrites
