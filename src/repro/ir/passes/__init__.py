"""Machine-independent optimisation passes (IMPACT's role, §4.1).

Given an application program, "the IMPACT module is employed to perform
machine independent optimisations" before elcor schedules the result.
The pipeline here plays that part: constant folding with algebraic
simplification and strength reduction, local copy propagation, local
common-subexpression elimination (including redundant-load elimination),
dead-code elimination and control-flow simplification, iterated to a
fixpoint.  Loop unrolling — the main ILP-exposing transformation — is
performed at the MiniC AST level (:mod:`repro.lang.unroll`) before
lowering.
"""

from repro.ir.passes.constfold import fold_constants
from repro.ir.passes.constloads import fold_const_loads
from repro.ir.passes.copyprop import propagate_copies
from repro.ir.passes.cse import eliminate_common_subexpressions
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.simplifycfg import simplify_cfg
from repro.ir.passes.pipeline import optimize_module, optimize_function

__all__ = [
    "fold_constants",
    "fold_const_loads",
    "propagate_copies",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "simplify_cfg",
    "optimize_module",
    "optimize_function",
]
