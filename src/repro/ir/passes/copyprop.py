"""Local copy propagation.

Within each block, uses of a register that currently holds a copy of
another value are rewritten to use the source directly.  Copies of both
registers and constants propagate; a mapping entry dies when either side
is redefined.  (The front-end emits all expression temporaries in-block,
so local propagation catches essentially everything; the global cases
are handled by later CSE/DCE iterations.)
"""

from __future__ import annotations

from typing import Dict

from repro.ir.instructions import Copy, Instr
from repro.ir.module import Function
from repro.ir.values import Const, Value, VReg


def propagate_copies(function: Function) -> int:
    rewrites = 0
    for block in function.blocks:
        available: Dict[VReg, Value] = {}
        for instr in block.instrs:
            # Rewrite uses through the available copies (chase one level;
            # chains resolve over pipeline iterations).
            mapping = {
                reg: value for reg, value in available.items()
                if any(use == reg for use in instr.uses())
            }
            if mapping:
                instr.replace_uses(mapping)
                rewrites += len(mapping)

            # Kill mappings invalidated by this instruction's definitions.
            for defined in instr.defs():
                available.pop(defined, None)
                dead = [
                    reg for reg, value in available.items() if value == defined
                ]
                for reg in dead:
                    del available[reg]

            if isinstance(instr, Copy) and isinstance(instr.src, (VReg, Const)):
                if instr.src != instr.dst:
                    available[instr.dst] = instr.src
    return rewrites
