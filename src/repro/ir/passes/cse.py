"""Local common-subexpression, redundant-load elimination and
store-to-load forwarding.

Within a block, a pure expression computed twice with identical operands
is replaced by a copy of the first result, provided no operand was
redefined in between.  Loads participate too: a load from [base+offset]
repeats a previous load — or picks up the value of a previous store —
with the same address expression, as long as no *other* store or call
intervened.  The memory model is conservative: any store or call kills
all remembered loads (except the mapping created by the store itself,
which is exact).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.instructions import BinOp, Call, Cmp, Copy, Load, Store
from repro.ir.module import Function
from repro.ir.values import Const, Value, VReg


def _key_of(instr) -> Tuple:
    if isinstance(instr, BinOp):
        # Commutative operators get a canonical operand order.
        a, b = instr.a, instr.b
        if instr.op in ("add", "mul", "and", "or", "xor"):
            a, b = sorted((a, b), key=str)
        return ("bin", instr.op, a, b)
    if isinstance(instr, Cmp):
        return ("cmp", instr.op, instr.a, instr.b)
    if isinstance(instr, Load) and not instr.speculative:
        return ("load", instr.base, instr.offset)
    return ()


def eliminate_common_subexpressions(function: Function) -> int:
    rewrites = 0
    for block in function.blocks:
        available: Dict[Tuple, Value] = {}
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, (Store, Call)):
                # Conservative: memory changed; all remembered loads die.
                available = {
                    key: value for key, value in available.items()
                    if key[0] != "load"
                }

            key = _key_of(instr)
            if key and key in available:
                block.instrs[index] = Copy(instr.defs()[0], available[key])
                rewrites += 1
                instr = block.instrs[index]

            # Kill expressions whose operands this instruction redefines.
            defined = set(instr.defs())
            if defined:
                dead: List[Tuple] = []
                for expr_key, result in available.items():
                    operands = [
                        value for value in expr_key[1:]
                        if isinstance(value, VReg)
                    ]
                    if (isinstance(result, VReg) and result in defined) or any(
                        operand in defined for operand in operands
                    ):
                        dead.append(expr_key)
                for expr_key in dead:
                    del available[expr_key]

            if key and key not in available:
                available[key] = instr.defs()[0]

            # Store-to-load forwarding: the stored value is exactly what
            # a matching load would observe.
            if isinstance(instr, Store) and isinstance(instr.value,
                                                       (VReg, Const)):
                available[("load", instr.base, instr.offset)] = instr.value
    return rewrites
