"""The standard optimisation pipeline, iterated to a fixpoint."""

from __future__ import annotations

from repro.ir.module import Function, Module
from repro.ir.passes.constfold import fold_constants
from repro.ir.passes.constloads import fold_const_loads
from repro.ir.passes.copyprop import propagate_copies
from repro.ir.passes.cse import eliminate_common_subexpressions
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.simplifycfg import simplify_cfg
from repro.ir.verify import verify_function, verify_module

_MAX_ITERATIONS = 10


def optimize_function(function: Function, verify: bool = False,
                      module: Module = None) -> int:
    """Optimise one function in place; returns total rewrites."""
    total = 0
    for _ in range(_MAX_ITERATIONS):
        changed = 0
        changed += fold_constants(function)
        if module is not None:
            changed += fold_const_loads(function, module)
        changed += propagate_copies(function)
        changed += eliminate_common_subexpressions(function)
        changed += eliminate_dead_code(function)
        changed += simplify_cfg(function)
        if verify:
            verify_function(function)
        total += changed
        if changed == 0:
            break
    return total


def optimize_module(module: Module, verify: bool = True) -> int:
    """Optimise every function; verifies the module afterwards."""
    total = 0
    for function in module.functions.values():
        total += optimize_function(function, module=module)
    if verify:
        verify_module(module)
    return total
