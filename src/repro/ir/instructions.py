"""IR instruction set.

Every instruction exposes ``uses()`` (values read), ``defs()`` (virtual
registers written) and ``replace_uses(mapping)`` so optimisation passes
can be written generically.  Memory is word-addressed; ``Load``/``Store``
take separate base and offset values, matching both target ISAs'
base+offset addressing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.ir.values import Const, Sym, Value, VReg

#: Binary arithmetic operators (two's-complement, 32-bit wrapping).
BINARY_OPS = (
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "shr", "shra",
)

#: Comparison operators; results are 0/1 words.
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "ult", "uge")


def _subst(value: Optional[Value], mapping: Dict[Value, Value]) -> Optional[Value]:
    if value is None:
        return None
    return mapping.get(value, value)


@dataclass
class Instr:
    """Base class; concrete instructions are the dataclasses below."""

    def uses(self) -> List[Value]:
        return []

    def defs(self) -> List[VReg]:
        return []

    def replace_uses(self, mapping: Dict[Value, Value]) -> None:
        raise NotImplementedError

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Ret))

    @property
    def has_side_effects(self) -> bool:
        return isinstance(self, (Store, Call, Br, CondBr, Ret))


@dataclass
class BinOp(Instr):
    op: str
    dst: VReg
    a: Value
    b: Value

    def uses(self) -> List[Value]:
        return [self.a, self.b]

    def defs(self) -> List[VReg]:
        return [self.dst]

    def replace_uses(self, mapping) -> None:
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.a}, {self.b}"


@dataclass
class Cmp(Instr):
    op: str
    dst: VReg
    a: Value
    b: Value

    def uses(self) -> List[Value]:
        return [self.a, self.b]

    def defs(self) -> List[VReg]:
        return [self.dst]

    def replace_uses(self, mapping) -> None:
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    def __str__(self) -> str:
        return f"{self.dst} = cmp.{self.op} {self.a}, {self.b}"


@dataclass
class Copy(Instr):
    dst: VReg
    src: Value

    def uses(self) -> List[Value]:
        return [self.src]

    def defs(self) -> List[VReg]:
        return [self.dst]

    def replace_uses(self, mapping) -> None:
        self.src = _subst(self.src, mapping)

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass
class Load(Instr):
    dst: VReg
    base: Value
    offset: Value
    #: Speculative (dismissible) load: out-of-range reads yield 0.
    speculative: bool = False

    def uses(self) -> List[Value]:
        return [self.base, self.offset]

    def defs(self) -> List[VReg]:
        return [self.dst]

    def replace_uses(self, mapping) -> None:
        self.base = _subst(self.base, mapping)
        self.offset = _subst(self.offset, mapping)

    def __str__(self) -> str:
        suffix = ".s" if self.speculative else ""
        return f"{self.dst} = load{suffix} [{self.base} + {self.offset}]"


@dataclass
class Store(Instr):
    value: Value
    base: Value
    offset: Value

    def uses(self) -> List[Value]:
        return [self.value, self.base, self.offset]

    def defs(self) -> List[VReg]:
        return []

    def replace_uses(self, mapping) -> None:
        self.value = _subst(self.value, mapping)
        self.base = _subst(self.base, mapping)
        self.offset = _subst(self.offset, mapping)

    def __str__(self) -> str:
        return f"store [{self.base} + {self.offset}] = {self.value}"


@dataclass
class Alloca(Instr):
    """Reserve ``size`` words of stack frame; ``dst`` holds the address."""

    dst: VReg
    size: int

    def uses(self) -> List[Value]:
        return []

    def defs(self) -> List[VReg]:
        return [self.dst]

    def replace_uses(self, mapping) -> None:
        pass

    def __str__(self) -> str:
        return f"{self.dst} = alloca {self.size}"


@dataclass
class Call(Instr):
    callee: str
    args: List[Value]
    dst: Optional[VReg] = None

    def uses(self) -> List[Value]:
        return list(self.args)

    def defs(self) -> List[VReg]:
        return [self.dst] if self.dst is not None else []

    def replace_uses(self, mapping) -> None:
        self.args = [_subst(arg, mapping) for arg in self.args]

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}call {self.callee}({args})"


@dataclass
class Br(Instr):
    target: str

    def replace_uses(self, mapping) -> None:
        pass

    def __str__(self) -> str:
        return f"br {self.target}"


@dataclass
class CondBr(Instr):
    cond: Value
    if_true: str
    if_false: str

    def uses(self) -> List[Value]:
        return [self.cond]

    def replace_uses(self, mapping) -> None:
        self.cond = _subst(self.cond, mapping)

    def __str__(self) -> str:
        return f"br {self.cond} ? {self.if_true} : {self.if_false}"


@dataclass
class Ret(Instr):
    value: Optional[Value] = None

    def uses(self) -> List[Value]:
        return [self.value] if self.value is not None else []

    def replace_uses(self, mapping) -> None:
        self.value = _subst(self.value, mapping)

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"
