"""Convenience builders for constructing IR by hand.

The MiniC front-end lowers through these builders, and tests/workloads
may construct IR directly when a C-level formulation is awkward.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import IRError
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, Cmp, CondBr, Copy, Load, Ret, Store,
    BINARY_OPS, CMP_OPS,
)
from repro.ir.module import Block, Function, GlobalArray, Module
from repro.ir.values import Const, Sym, Value, VReg

ValueLike = Union[Value, int]


def _value(value: ValueLike) -> Value:
    if isinstance(value, int):
        return Const(value)
    return value


class FunctionBuilder:
    """Builds one function block-by-block with an insertion point."""

    def __init__(self, name: str, param_hints: Sequence[str] = ()):
        self.function = Function(name=name, params=[])
        for hint in param_hints:
            self.function.params.append(self.function.new_vreg(hint))
        self._current: Optional[Block] = None
        self._block_names: Dict[str, int] = {}

    # -- blocks -----------------------------------------------------------

    def new_block(self, hint: str = "bb") -> str:
        index = self._block_names.get(hint, 0)
        self._block_names[hint] = index + 1
        name = f"{hint}{index}" if index or hint == "bb" else hint
        block = Block(name=name)
        self.function.blocks.append(block)
        return name

    def set_block(self, name: str) -> None:
        self._current = self.function.block(name)

    @property
    def current_block(self) -> Block:
        if self._current is None:
            raise IRError("no insertion block selected")
        return self._current

    @property
    def terminated(self) -> bool:
        block = self.current_block
        return bool(block.instrs) and block.instrs[-1].is_terminator

    def _emit(self, instr) -> None:
        block = self.current_block
        if block.instrs and block.instrs[-1].is_terminator:
            raise IRError(
                f"emitting into terminated block {block.name!r}: {instr}"
            )
        block.instrs.append(instr)

    # -- values -----------------------------------------------------------

    def vreg(self, hint: str = "") -> VReg:
        return self.function.new_vreg(hint)

    @property
    def params(self) -> List[VReg]:
        return self.function.params

    # -- instructions -------------------------------------------------------

    def binop(self, op: str, a: ValueLike, b: ValueLike,
              hint: str = "t") -> VReg:
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary op {op!r}")
        dst = self.vreg(hint)
        self._emit(BinOp(op, dst, _value(a), _value(b)))
        return dst

    def cmp(self, op: str, a: ValueLike, b: ValueLike, hint: str = "c") -> VReg:
        if op not in CMP_OPS:
            raise IRError(f"unknown comparison {op!r}")
        dst = self.vreg(hint)
        self._emit(Cmp(op, dst, _value(a), _value(b)))
        return dst

    def copy_to(self, dst: VReg, src: ValueLike) -> None:
        self._emit(Copy(dst, _value(src)))

    def copy(self, src: ValueLike, hint: str = "t") -> VReg:
        dst = self.vreg(hint)
        self.copy_to(dst, src)
        return dst

    def load(self, base: ValueLike, offset: ValueLike = 0,
             hint: str = "ld", speculative: bool = False) -> VReg:
        dst = self.vreg(hint)
        self._emit(Load(dst, _value(base), _value(offset), speculative))
        return dst

    def store(self, value: ValueLike, base: ValueLike,
              offset: ValueLike = 0) -> None:
        self._emit(Store(_value(value), _value(base), _value(offset)))

    def alloca(self, size: int, hint: str = "frame") -> VReg:
        dst = self.vreg(hint)
        self._emit(Alloca(dst, size))
        return dst

    def call(self, callee: str, args: Sequence[ValueLike],
             returns_value: bool = True, hint: str = "rv") -> Optional[VReg]:
        dst = self.vreg(hint) if returns_value else None
        self._emit(Call(callee, [_value(arg) for arg in args], dst))
        return dst

    def br(self, target: str) -> None:
        self._emit(Br(target))

    def cond_br(self, cond: ValueLike, if_true: str, if_false: str) -> None:
        self._emit(CondBr(_value(cond), if_true, if_false))

    def ret(self, value: Optional[ValueLike] = None) -> None:
        self._emit(Ret(_value(value) if value is not None else None))


class ModuleBuilder:
    """Builds a module: globals plus functions."""

    def __init__(self):
        self.module = Module()

    def global_array(self, name: str, size: int,
                     init: Sequence[int] = (),
                     immutable: bool = False) -> Sym:
        self.module.add_global(
            GlobalArray(name, size, tuple(init), immutable)
        )
        return Sym(name)

    def function(self, name: str, param_hints: Sequence[str] = ()) -> FunctionBuilder:
        builder = FunctionBuilder(name, param_hints)
        self.module.add_function(builder.function)
        return builder

    def build(self) -> Module:
        return self.module
