"""IR containers: blocks, functions, global arrays and modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.instructions import Br, CondBr, Instr, Ret
from repro.ir.values import VReg


@dataclass
class Block:
    """A basic block: straight-line instructions plus one terminator."""

    name: str
    instrs: List[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr:
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise IRError(f"block {self.name!r} lacks a terminator")
        return self.instrs[-1]

    @property
    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[:-1]
        return list(self.instrs)

    def successors(self) -> List[str]:
        term = self.terminator
        if isinstance(term, Br):
            return [term.target]
        if isinstance(term, CondBr):
            return [term.if_true, term.if_false]
        return []

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"  {instr}" for instr in self.instrs)
        return "\n".join(lines)


@dataclass
class Function:
    """A function: named parameters (virtual registers) and blocks."""

    name: str
    params: List[VReg]
    blocks: List[Block] = field(default_factory=list)
    next_vreg: int = 0

    def block(self, name: str) -> Block:
        for block in self.blocks:
            if block.name == name:
                return block
        raise IRError(f"no block {name!r} in function {self.name!r}")

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def block_names(self) -> List[str]:
        return [block.name for block in self.blocks]

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {block.name: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                if succ not in preds:
                    raise IRError(
                        f"{self.name}: branch to unknown block {succ!r}"
                    )
                preds[succ].append(block.name)
        return preds

    def new_vreg(self, hint: str = "") -> VReg:
        reg = VReg(self.next_vreg, hint)
        self.next_vreg += 1
        return reg

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def __str__(self) -> str:
        params = ", ".join(str(param) for param in self.params)
        header = f"func {self.name}({params}) {{"
        body = "\n".join(str(block) for block in self.blocks)
        return f"{header}\n{body}\n}}"


@dataclass
class GlobalArray:
    """A global word array; becomes part of the data-memory image."""

    name: str
    size: int
    init: Tuple[int, ...] = ()
    #: Immutable (declared const): loads at constant offsets may fold.
    immutable: bool = False

    def __post_init__(self) -> None:
        if self.size < 1:
            raise IRError(f"global {self.name!r} must have size >= 1")
        if len(self.init) > self.size:
            raise IRError(
                f"global {self.name!r}: initialiser longer than the array"
            )

    def image(self, mask: int) -> List[int]:
        words = [value & mask for value in self.init]
        words.extend(0 for _ in range(self.size - len(words)))
        return words


@dataclass
class Module:
    """A translation unit: globals plus functions."""

    functions: Dict[str, Function] = field(default_factory=dict)
    globals: Dict[str, GlobalArray] = field(default_factory=dict)

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def add_global(self, array: GlobalArray) -> GlobalArray:
        if array.name in self.globals or array.name in self.functions:
            raise IRError(f"duplicate global {array.name!r}")
        self.globals[array.name] = array
        return array

    def layout_globals(self) -> Dict[str, int]:
        """Assign word addresses to globals (stable, declaration order)."""
        addresses: Dict[str, int] = {}
        cursor = 0
        for name, array in self.globals.items():
            addresses[name] = cursor
            cursor += array.size
        return addresses

    def data_image(self, mask: int = 0xFFFFFFFF) -> List[int]:
        """Initial data-memory image following :meth:`layout_globals`."""
        image: List[int] = []
        for array in self.globals.values():
            image.extend(array.image(mask))
        return image

    def __str__(self) -> str:
        parts = [
            f"global {array.name}[{array.size}]"
            for array in self.globals.values()
        ]
        parts.extend(str(function) for function in self.functions.values())
        return "\n\n".join(parts)
