"""IR operand values: virtual registers, constants and symbol addresses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class VReg:
    """A virtual register (SSA-ish: typically written once, but the IR
    does not require it — the front-end reuses registers for mutable
    scalars and passes do liveness analysis instead)."""

    id: int
    hint: str = ""

    def __str__(self) -> str:
        return f"%{self.hint}{self.id}" if self.hint else f"%{self.id}"


@dataclass(frozen=True)
class Const:
    """A word constant (two's-complement 32-bit at the usual width)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Sym:
    """The address of a global array, plus a constant word offset."""

    name: str
    offset: int = 0

    def __str__(self) -> str:
        if self.offset:
            return f"@{self.name}+{self.offset}"
        return f"@{self.name}"


Value = Union[VReg, Const, Sym]
