"""IR verifier: structural invariants checked between passes.

Checks:
* every block ends with exactly one terminator, and only at the end;
* every branch target names a block of the same function;
* every use of a virtual register is dominated by *some* definition on
  every path from entry (conservative reaching-definitions check);
* calls reference functions defined in the module (or known externals);
* symbols reference declared globals;
* the entry block has no predecessors via fallthrough assumptions.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import IRError
from repro.ir.instructions import Call, Instr
from repro.ir.module import Function, Module
from repro.ir.values import Sym, VReg


def _check_blocks(function: Function) -> None:
    if not function.blocks:
        raise IRError(f"{function.name}: function has no blocks")
    names: Set[str] = set()
    for block in function.blocks:
        if block.name in names:
            raise IRError(f"{function.name}: duplicate block {block.name!r}")
        names.add(block.name)
        if not block.instrs:
            raise IRError(f"{function.name}: empty block {block.name!r}")
        for instr in block.instrs[:-1]:
            if instr.is_terminator:
                raise IRError(
                    f"{function.name}/{block.name}: terminator {instr} in "
                    "the middle of a block"
                )
        if not block.instrs[-1].is_terminator:
            raise IRError(
                f"{function.name}/{block.name}: block does not end with a "
                "terminator"
            )
    for block in function.blocks:
        for succ in block.successors():
            if succ not in names:
                raise IRError(
                    f"{function.name}/{block.name}: branch to unknown "
                    f"block {succ!r}"
                )


def _check_defs_reach_uses(function: Function) -> None:
    """Dataflow check: no path from entry can read an undefined vreg."""
    defined_in: Dict[str, Set[VReg]] = {}
    for block in function.blocks:
        local: Set[VReg] = set()
        for instr in block.instrs:
            local.update(instr.defs())
        defined_in[block.name] = local

    preds = function.predecessors()
    entry_name = function.entry.name
    # "Definitely defined at block entry" via forward must-analysis.
    live_in: Dict[str, Set[VReg]] = {
        block.name: set() for block in function.blocks
    }
    all_defs: Set[VReg] = set(function.params)
    for block in function.blocks:
        all_defs |= defined_in[block.name]
    for name in live_in:
        live_in[name] = set(all_defs)
    live_in[entry_name] = set(function.params)

    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            if block.name == entry_name:
                incoming = set(function.params)
            else:
                sources = preds[block.name]
                if sources:
                    incoming = set.intersection(
                        *(live_in[p] | defined_in[p] for p in sources)
                    )
                else:
                    # Unreachable block: treat everything as defined; DCE
                    # will remove it.
                    incoming = set(all_defs)
            if incoming != live_in[block.name]:
                live_in[block.name] = incoming
                changed = True

    for block in function.blocks:
        available = set(live_in[block.name])
        for instr in block.instrs:
            for value in instr.uses():
                if isinstance(value, VReg) and value not in available:
                    raise IRError(
                        f"{function.name}/{block.name}: use of possibly "
                        f"undefined register {value} in {instr}"
                    )
            available.update(instr.defs())


def verify_function(function: Function, module: Module = None,
                    externals: Set[str] = frozenset()) -> None:
    _check_blocks(function)
    _check_defs_reach_uses(function)
    if module is None:
        return
    for instr in function.instructions():
        if isinstance(instr, Call):
            if instr.callee not in module.functions and \
                    instr.callee not in externals:
                raise IRError(
                    f"{function.name}: call to undefined function "
                    f"{instr.callee!r}"
                )
        for value in instr.uses():
            if isinstance(value, Sym) and value.name not in module.globals:
                raise IRError(
                    f"{function.name}: reference to undefined global "
                    f"{value.name!r}"
                )


def verify_module(module: Module, externals: Set[str] = frozenset()) -> None:
    """Verify every function; raises :class:`IRError` on the first issue."""
    if not module.functions:
        raise IRError("module has no functions")
    for function in module.functions.values():
        verify_function(function, module, externals)
