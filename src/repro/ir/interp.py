"""IR interpreter — the toolchain's golden model.

Executes a module with the same observable semantics the machine
backends must implement: 32-bit two's-complement arithmetic, a flat
word-addressed memory holding the globals (laid out exactly as
``Module.layout_globals``), and a downward-growing stack for ``alloca``.

Both the EPIC core and the SA-110 baseline are validated against this
interpreter on every workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import IRError, SimulationError
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, Cmp, CondBr, Copy, Load, Ret, Store,
)
from repro.ir.module import Module
from repro.ir.values import Const, Sym, Value, VReg
from repro.isa.semantics import ALU_SEMANTICS, CMP_SEMANTICS, to_signed

_BIN_TO_SEM = {
    "add": "ADD", "sub": "SUB", "mul": "MUL", "div": "DIV", "rem": "REM",
    "and": "AND", "or": "OR", "xor": "XOR",
    "shl": "SHL", "shr": "SHR", "shra": "SHRA",
}
_CMP_TO_SEM = {
    "eq": "CMPP_EQ", "ne": "CMPP_NE", "lt": "CMPP_LT", "le": "CMPP_LE",
    "gt": "CMPP_GT", "ge": "CMPP_GE", "ult": "CMPP_ULT", "uge": "CMPP_UGE",
}


class Interpreter:
    """Executes IR functions over a shared memory image."""

    def __init__(self, module: Module, mem_words: int = 1 << 16,
                 width: int = 32):
        self.module = module
        self.width = width
        self.mask = (1 << width) - 1
        self.addresses = module.layout_globals()
        image = module.data_image(self.mask)
        if len(image) > mem_words:
            raise SimulationError(
                f"globals ({len(image)} words) exceed memory "
                f"({mem_words} words)"
            )
        self.memory: List[int] = image + [0] * (mem_words - len(image))
        self._stack_pointer = mem_words
        self.steps = 0
        self.max_steps = 500_000_000
        #: Optional execution profile: (function, block, instr index) ->
        #: dynamic execution count.  Enable by assigning a Counter-like
        #: mapping before running; used by repro.explore.custominsn.
        self.profile = None

    # -- memory ------------------------------------------------------------

    def read(self, address: int, speculative: bool = False) -> int:
        if not 0 <= address < len(self.memory):
            if speculative:
                return 0
            raise SimulationError(f"IR load from invalid address {address}")
        return self.memory[address]

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < len(self.memory):
            raise SimulationError(f"IR store to invalid address {address}")
        self.memory[address] = value & self.mask

    def read_global(self, name: str) -> List[int]:
        array = self.module.globals[name]
        base = self.addresses[name]
        return self.memory[base:base + array.size]

    def write_global(self, name: str, values: Sequence[int]) -> None:
        array = self.module.globals[name]
        if len(values) > array.size:
            raise SimulationError(f"image larger than global {name!r}")
        base = self.addresses[name]
        for offset, value in enumerate(values):
            self.memory[base + offset] = value & self.mask

    # -- execution -----------------------------------------------------------

    def _eval(self, env: Dict[VReg, int], value: Value) -> int:
        if isinstance(value, Const):
            return value.value & self.mask
        if isinstance(value, Sym):
            if value.name not in self.addresses:
                raise IRError(f"undefined global {value.name!r}")
            return (self.addresses[value.name] + value.offset) & self.mask
        try:
            return env[value]
        except KeyError:
            raise IRError(f"read of undefined register {value}") from None

    def call(self, name: str, args: Sequence[int] = ()) -> Optional[int]:
        """Call a function by name with integer arguments."""
        try:
            function = self.module.functions[name]
        except KeyError:
            raise IRError(f"undefined function {name!r}") from None
        if len(args) != len(function.params):
            raise IRError(
                f"{name} expects {len(function.params)} args, got {len(args)}"
            )
        env: Dict[VReg, int] = {
            param: value & self.mask
            for param, value in zip(function.params, args)
        }
        frame_base = self._stack_pointer
        blocks = {block.name: block for block in function.blocks}
        block = function.entry
        width = self.width

        profile = self.profile
        while True:
            next_block: Optional[str] = None
            for index, instr in enumerate(block.instrs):
                if profile is not None:
                    profile[(function.name, block.name, index)] += 1
                self.steps += 1
                if self.steps > self.max_steps:
                    raise SimulationError("IR interpreter step budget exhausted")
                if isinstance(instr, BinOp):
                    a = self._eval(env, instr.a)
                    b = self._eval(env, instr.b)
                    env[instr.dst] = ALU_SEMANTICS[_BIN_TO_SEM[instr.op]](
                        a, b, width
                    )
                elif isinstance(instr, Cmp):
                    a = self._eval(env, instr.a)
                    b = self._eval(env, instr.b)
                    env[instr.dst] = CMP_SEMANTICS[_CMP_TO_SEM[instr.op]](
                        a, b, width
                    )
                elif isinstance(instr, Copy):
                    env[instr.dst] = self._eval(env, instr.src)
                elif isinstance(instr, Load):
                    address = to_signed(
                        (self._eval(env, instr.base)
                         + self._eval(env, instr.offset)) & self.mask,
                        width,
                    )
                    env[instr.dst] = self.read(address, instr.speculative)
                elif isinstance(instr, Store):
                    address = to_signed(
                        (self._eval(env, instr.base)
                         + self._eval(env, instr.offset)) & self.mask,
                        width,
                    )
                    self.write(address, self._eval(env, instr.value))
                elif isinstance(instr, Alloca):
                    self._stack_pointer -= instr.size
                    if self._stack_pointer < 0:
                        raise SimulationError("IR stack overflow")
                    env[instr.dst] = self._stack_pointer
                elif isinstance(instr, Call):
                    result = self.call(
                        instr.callee,
                        [self._eval(env, arg) for arg in instr.args],
                    )
                    if instr.dst is not None:
                        if result is None:
                            raise IRError(
                                f"{instr.callee} returned no value but the "
                                "result is used"
                            )
                        env[instr.dst] = result
                elif isinstance(instr, Br):
                    next_block = instr.target
                elif isinstance(instr, CondBr):
                    taken = self._eval(env, instr.cond) != 0
                    next_block = instr.if_true if taken else instr.if_false
                elif isinstance(instr, Ret):
                    self._stack_pointer = frame_base
                    if instr.value is None:
                        return None
                    return self._eval(env, instr.value)
                else:  # pragma: no cover - defensive
                    raise IRError(f"interpreter cannot execute {instr}")
            if next_block is None:
                raise IRError(f"block {block.name!r} fell through")
            block = blocks[next_block]


def run_module(module: Module, entry: str = "main",
               args: Sequence[int] = (),
               mem_words: int = 1 << 16) -> Interpreter:
    """Run ``entry`` and return the interpreter for state inspection."""
    interpreter = Interpreter(module, mem_words)
    interpreter.result = interpreter.call(entry, args)
    return interpreter
