"""Intermediate representation of the compiler (IMPACT's role, §4.1).

A small, explicit three-address IR over 32-bit words: virtual registers,
constants and symbol addresses; basic blocks with a single terminator;
functions with register parameters; a module holding functions plus
global word arrays (which become the data-memory image).

The IR has an interpreter (:mod:`repro.ir.interp`) that serves as the
golden model between the MiniC front-end and the two machine backends:
the EPIC core and the SA-110 baseline must reproduce its observable
results exactly.
"""

from repro.ir.values import Const, Sym, Value, VReg
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cmp,
    CondBr,
    Copy,
    Instr,
    Load,
    Ret,
    Store,
    BINARY_OPS,
    CMP_OPS,
)
from repro.ir.module import Block, Function, GlobalArray, Module
from repro.ir.builder import FunctionBuilder, ModuleBuilder
from repro.ir.verify import verify_module
from repro.ir.interp import Interpreter, run_module

__all__ = [
    "Const", "Sym", "Value", "VReg",
    "Alloca", "BinOp", "Br", "Call", "Cmp", "CondBr", "Copy", "Instr",
    "Load", "Ret", "Store", "BINARY_OPS", "CMP_OPS",
    "Block", "Function", "GlobalArray", "Module",
    "FunctionBuilder", "ModuleBuilder",
    "verify_module",
    "Interpreter", "run_module",
]
