"""Instruction selection for the Armlet scalar baseline.

Same IR in, sequential scalar code out.  Compares fuse into conditional
branches (``BEQ``/``BLT``/...); value-position compares materialise 0/1
through a tiny branch diamond, as scalar RISC code generators do.
Division expands to runtime calls — the ISA, like ARM, has none.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ScheduleError
from repro.ir import instructions as ir
from repro.ir.module import Function, Module
from repro.ir.values import Const, Sym, Value, VReg
from repro.isa.operands import Lit, Reg
from repro.backend.mops import CALL, ENTER, MBlock, MFunction, MOp, RET, VR

_BIN_MNEMONIC = {
    "add": "ADD", "sub": "SUB", "mul": "MUL",
    "and": "AND", "or": "OR", "xor": "XOR",
    "shl": "SHL", "shr": "SHR", "shra": "SHRA",
}

#: Fused compare-branch mnemonics ("branch when <op> holds").
CMP_BRANCH = {
    "eq": "BEQ", "ne": "BNE", "lt": "BLT", "le": "BLE",
    "gt": "BGT", "ge": "BGE", "ult": "BLTU", "uge": "BGEU",
}
#: Negations, for branching to the false arm.
CMP_NEGATE = {
    "eq": "ne", "ne": "eq", "lt": "ge", "le": "gt",
    "gt": "le", "ge": "lt", "ult": "uge", "uge": "ult",
}

#: Armlet immediates: ARM synthesises wide constants with mov/orr pairs
#: or a literal-pool load; immediates up to 8 bits ride for free in the
#: instruction (ARM's rotated imm8 — we approximate with a plain range
#: check, biased generously in ARM's favour).
ARM_IMM_LIMIT = 1 << 12


def armlet_label(function_name: str, block_name: str, entry: str) -> str:
    if block_name == entry:
        return function_name
    return f"{function_name}${block_name}"


class ArmletISel:
    """Selects one IR function into scalar Armlet MOps."""

    def __init__(self, function: Function, module: Module,
                 global_addresses: Dict[str, int]):
        self.function = function
        self.module = module
        self.addresses = global_addresses
        self.mfunc = MFunction(name=function.name)
        self.vreg_map: Dict[VReg, VR] = {}
        self._use_counts = self._count_uses()
        self._order = [block.name for block in function.blocks]
        self._alloca_count = 0
        self._local_labels = 0

    def _count_uses(self) -> Counter:
        counts: Counter = Counter()
        for instr in self.function.instructions():
            for value in instr.uses():
                if isinstance(value, VReg):
                    counts[value] += 1
        return counts

    def _vr(self, reg: VReg) -> VR:
        if reg not in self.vreg_map:
            self.vreg_map[reg] = self.mfunc.new_vr(reg.hint)
        return self.vreg_map[reg]

    def _address_of(self, sym: Sym) -> int:
        try:
            return self.addresses[sym.name] + sym.offset
        except KeyError:
            raise ScheduleError(f"undefined global {sym.name!r}") from None

    def _label(self, block_name: str) -> str:
        return armlet_label(self.function.name, block_name,
                            self.function.entry.name)

    def _operand(self, out: List[MOp], value: Value):
        if isinstance(value, VReg):
            return self._vr(value)
        raw = (
            value.value if isinstance(value, Const)
            else self._address_of(value)
        )
        if -ARM_IMM_LIMIT <= raw < ARM_IMM_LIMIT:
            return Lit(raw)
        temp = self.mfunc.new_vr("imm")
        out.append(MOp("MOVI", dest1=temp, src1=Lit(raw)))
        return temp

    def _register_operand(self, out: List[MOp], value: Value):
        operand = self._operand(out, value)
        if isinstance(operand, Lit):
            temp = self.mfunc.new_vr("tmp")
            out.append(MOp("MOVE", dest1=temp, src1=operand))
            return temp
        return operand

    # -- selection ----------------------------------------------------------

    def _select_instr(self, instr: ir.Instr, out: List[MOp],
                      emit_block) -> None:
        if isinstance(instr, ir.BinOp):
            if instr.op in ("div", "rem"):
                callee = "__divsi3" if instr.op == "div" else "__modsi3"
                args = [self._operand(out, v) for v in (instr.a, instr.b)]
                out.append(MOp(CALL, dest1=self._vr(instr.dst),
                               target=callee, args=args))
                self.mfunc.has_calls = True
                return
            a = self._operand(out, instr.a)
            b = self._operand(out, instr.b)
            if isinstance(a, Lit):
                a = self._register_operand(out, Const(a.value))
            out.append(MOp(_BIN_MNEMONIC[instr.op], dest1=self._vr(instr.dst),
                           src1=a, src2=b))
            return

        if isinstance(instr, ir.Cmp):
            # dst = 1; Bcc over; dst = 0; over:
            a = self._register_operand(out, instr.a)
            b = self._operand(out, instr.b)
            if isinstance(b, Lit):
                b = self._register_operand(out, Const(b.value))
            dst = self._vr(instr.dst)
            label = f"{self.function.name}$$cmp{self._local_labels}"
            self._local_labels += 1
            out.append(MOp("MOVI", dest1=dst, src1=Lit(1)))
            out.append(MOp(CMP_BRANCH[instr.op], src1=a, src2=b,
                           target=label))
            out.append(MOp("MOVI", dest1=dst, src1=Lit(0)))
            emit_block(label)
            return

        if isinstance(instr, ir.Copy):
            src = self._operand(out, instr.src)
            mnemonic = "MOVE"
            if isinstance(src, Lit) and not -ARM_IMM_LIMIT <= src.value \
                    < ARM_IMM_LIMIT:
                mnemonic = "MOVI"
            out.append(MOp(mnemonic, dest1=self._vr(instr.dst), src1=src))
            return

        if isinstance(instr, ir.Load):
            base, offset = self._address_pair(out, instr.base, instr.offset)
            mnemonic = "LWS" if instr.speculative else "LW"
            out.append(MOp(mnemonic, dest1=self._vr(instr.dst),
                           src1=base, src2=offset))
            return

        if isinstance(instr, ir.Store):
            value = self._register_operand(out, instr.value)
            base, offset = self._address_pair(out, instr.base, instr.offset)
            out.append(MOp("SW", dest1=value, src1=base, src2=offset))
            return

        if isinstance(instr, ir.Alloca):
            marker = f"alloca:{self._alloca_count}"
            self._alloca_count += 1
            vr = self._vr(instr.dst)
            self.mfunc.allocas.append((vr, instr.size))
            out.append(MOp("ADD", dest1=vr, src1=Reg(1), src2=Lit(0),
                           target=marker))
            return

        if isinstance(instr, ir.Call):
            args = [self._operand(out, v) for v in instr.args]
            dest = self._vr(instr.dst) if instr.dst is not None else None
            out.append(MOp(CALL, dest1=dest, target=instr.callee, args=args))
            self.mfunc.has_calls = True
            return

        raise ScheduleError(f"cannot select {instr}")  # pragma: no cover

    def _address_pair(self, out: List[MOp], base: Value, offset: Value):
        if isinstance(base, (Const, Sym)) and isinstance(offset, Const):
            base_value = (
                base.value if isinstance(base, Const)
                else self._address_of(base)
            )
            total = base_value + offset.value
            if -ARM_IMM_LIMIT <= total < ARM_IMM_LIMIT:
                return Reg(0), Lit(total)
            temp = self.mfunc.new_vr("addr")
            out.append(MOp("MOVI", dest1=temp, src1=Lit(total)))
            return temp, Lit(0)
        base_op = self._operand(out, base)
        offset_op = self._operand(out, offset)
        if isinstance(base_op, Lit) and isinstance(offset_op, Lit):
            return Reg(0), Lit(base_op.value + offset_op.value)
        if isinstance(base_op, Lit):
            base_op, offset_op = offset_op, base_op
        return base_op, offset_op

    def _fusible_cmp(self, block) -> Optional[int]:
        term = block.terminator
        if not isinstance(term, ir.CondBr) or not isinstance(term.cond, VReg):
            return None
        if self._use_counts[term.cond] != 1:
            return None
        for index in range(len(block.instrs) - 2, -1, -1):
            instr = block.instrs[index]
            if term.cond in instr.defs():
                if isinstance(instr, ir.Cmp):
                    return index
                return None
        return None

    def run(self) -> MFunction:
        entry_name = self.function.entry.name
        current = MBlock("")  # placeholder, replaced in loop

        def emit_block(label: str) -> None:
            nonlocal current
            current = MBlock(label)
            self.mfunc.blocks.append(current)

        for position, block in enumerate(self.function.blocks):
            emit_block(self._label(block.name))
            if block.name == entry_name:
                params = [self._vr(p) for p in self.function.params]
                current.mops.append(MOp(ENTER, args=list(params)))

            fused = self._fusible_cmp(block)
            for index, instr in enumerate(block.instrs[:-1]):
                if index == fused:
                    continue
                self._select_instr(instr, current.mops, emit_block)

            term = block.terminator
            next_name = (
                self.function.blocks[position + 1].name
                if position + 1 < len(self.function.blocks) else None
            )
            out = current.mops
            if isinstance(term, ir.Ret):
                value = None
                if term.value is not None:
                    value = self._operand(out, term.value)
                out.append(MOp(RET, src1=value))
            elif isinstance(term, ir.Br):
                if term.target != next_name:
                    out.append(MOp("B", target=self._label(term.target)))
            elif isinstance(term, ir.CondBr):
                if fused is not None:
                    cmp_instr = block.instrs[fused]
                    op = cmp_instr.op
                    a = self._register_operand(out, cmp_instr.a)
                    b = self._operand(out, cmp_instr.b)
                    if isinstance(b, Lit):
                        b = self._register_operand(out, Const(b.value))
                else:
                    op = "ne"
                    a = self._register_operand(out, term.cond)
                    b = self._register_operand(out, Const(0))
                if term.if_false == next_name:
                    out.append(MOp(CMP_BRANCH[op], src1=a, src2=b,
                                   target=self._label(term.if_true)))
                elif term.if_true == next_name:
                    out.append(MOp(CMP_BRANCH[CMP_NEGATE[op]], src1=a,
                                   src2=b, target=self._label(term.if_false)))
                else:
                    out.append(MOp(CMP_BRANCH[op], src1=a, src2=b,
                                   target=self._label(term.if_true)))
                    out.append(MOp("B", target=self._label(term.if_false)))
            else:  # pragma: no cover - defensive
                raise ScheduleError(f"unknown terminator {term}")
        return self.mfunc
