"""The StrongARM SA-110 baseline (SimIt-ARM's role, §5.2).

The paper measures its EPIC designs against the StrongARM SA-110 at
100 MHz, with cycle counts from the SimIt-ARM simulator.  We cannot run
SimIt-ARM or an ARM compiler here, so this package provides the closest
synthetic equivalent built from the same source programs:

* **Armlet** — a scalar, ARM-flavoured RISC ISA: 16 registers, no
  divide instruction (``/``/``%`` expand to the ``__divsi3`` runtime,
  as on real ARM), fused compare-and-branch, full-word immediates
  charged at ARM constant-synthesis cost;
* a **code generator** from the *same IR* the EPIC backend consumes
  (same front-end, same machine-independent optimisations), with the
  same linear-scan allocator restricted to the 16-register file;
* an **in-order timing model** with SA-110-style pipeline behaviour:
  one instruction per cycle, a 1-cycle load-use interlock, a 2-cycle
  taken-branch penalty, and an early-terminating multiplier (1-3 extra
  cycles by multiplier magnitude).

What this preserves from the paper's setup: a mature single-issue
hardcore pipeline executing the identical algorithms, so the EPIC/SA-110
*cycle-count ratios* reflect exploitable ILP rather than compiler or
workload differences.
"""

from repro.baseline.backend import ArmletCompilation, compile_ir_to_armlet, compile_minic_to_armlet
from repro.baseline.sa110 import Sa110Simulator, Sa110Timing

__all__ = [
    "ArmletCompilation",
    "compile_ir_to_armlet",
    "compile_minic_to_armlet",
    "Sa110Simulator",
    "Sa110Timing",
]
