"""Pseudo-op expansion for the Armlet baseline (scalar conventions)."""

from __future__ import annotations

from typing import List, Tuple

from repro.backend.expand import (
    _FrameInfo, count_stack_params, sequentialize_parallel_copies,
)
from repro.backend.mops import CALL, ENTER, MFunction, MOp, RET, SpillRef
from repro.errors import ScheduleError
from repro.isa.operands import Lit, Reg
from repro.sched.convention import RegConvention
from repro.sched.regalloc import AllocationResult
from repro.baseline.isel import ARM_IMM_LIMIT


def expand_armlet_function(mfunc: MFunction, convention: RegConvention,
                           allocation: AllocationResult) -> None:
    """Expand ENTER/CALL/RET and patch frame offsets in place."""
    saved = list(allocation.used_callee_saved)
    if mfunc.has_calls:
        saved = [convention.ra] + saved
    frame = _FrameInfo(mfunc, saved,
                       count_stack_params(mfunc, convention.max_reg_args))
    sp = Reg(convention.sp)

    def patch_marker(mop: MOp) -> None:
        if mop.target is None:
            return
        if mop.target.startswith("alloca:"):
            index = int(mop.target.split(":")[1])
            mop.src2 = Lit(frame.alloca_offsets[index])
            mop.target = None
        elif mop.target.startswith("spill:"):
            slot = int(mop.target.split(":")[1])
            mop.src2 = Lit(frame.spill_base + slot)
            mop.target = None

    def move_into(dest: Reg, operand, out: List[MOp]) -> None:
        if isinstance(operand, Lit):
            mnemonic = (
                "MOVE" if -ARM_IMM_LIMIT <= operand.value < ARM_IMM_LIMIT
                else "MOVI"
            )
            out.append(MOp(mnemonic, dest1=dest, src1=operand))
        elif isinstance(operand, SpillRef):
            out.append(MOp("LW", dest1=dest, src1=sp,
                           src2=Lit(frame.spill_base + operand.slot)))
        elif isinstance(operand, Reg):
            if operand.index != dest.index:
                out.append(MOp("MOVE", dest1=dest, src1=operand))
        else:
            raise ScheduleError(f"unexpected operand {operand!r} at expansion")

    def expand_enter(mop: MOp, out: List[MOp]) -> None:
        if frame.size:
            out.append(MOp("SUB", dest1=sp, src1=sp, src2=Lit(frame.size)))
        for reg, offset in frame.save_offsets.items():
            out.append(MOp("SW", dest1=Reg(reg), src1=sp, src2=Lit(offset)))
        # Same ordering rules as the EPIC expander: spill-stores, then
        # parallel copies, then stack-parameter loads.
        reg_pairs: List[Tuple[int, int]] = []
        stack_loads: List[MOp] = []
        scratch = Reg(convention.scratch[0])
        for position, param in enumerate(mop.args):
            if position >= convention.max_reg_args:
                offset = frame.incoming_base + position \
                    - convention.max_reg_args
                if isinstance(param, SpillRef):
                    stack_loads.append(MOp("LW", dest1=scratch, src1=sp,
                                           src2=Lit(offset)))
                    stack_loads.append(MOp(
                        "SW", dest1=scratch, src1=sp,
                        src2=Lit(frame.spill_base + param.slot)))
                elif isinstance(param, Reg):
                    stack_loads.append(MOp("LW", dest1=param, src1=sp,
                                           src2=Lit(offset)))
                else:
                    raise ScheduleError(f"unallocated parameter {param!r}")
                continue
            arg_reg = convention.arg_regs[position]
            if isinstance(param, SpillRef):
                out.append(MOp("SW", dest1=Reg(arg_reg), src1=sp,
                               src2=Lit(frame.spill_base + param.slot)))
            elif isinstance(param, Reg):
                reg_pairs.append((param.index, arg_reg))
            else:
                raise ScheduleError(f"unallocated parameter {param!r}")
        for dst, src in sequentialize_parallel_copies(
                reg_pairs, convention.scratch[0]):
            out.append(MOp("MOVE", dest1=Reg(dst), src1=Reg(src)))
        out.extend(stack_loads)

    def expand_call(mop: MOp, out: List[MOp]) -> None:
        n_extra = max(0, len(mop.args) - convention.max_reg_args)
        scratch = Reg(convention.scratch[0])
        for extra, argument in enumerate(mop.args[convention.max_reg_args:]):
            offset = Lit(-n_extra + extra)
            if isinstance(argument, Reg):
                out.append(MOp("SW", dest1=argument, src1=sp, src2=offset))
            else:
                move_into(scratch, argument, out)
                out.append(MOp("SW", dest1=scratch, src1=sp, src2=offset))
        for position, argument in enumerate(
                mop.args[:convention.max_reg_args]):
            move_into(Reg(convention.arg_regs[position]), argument, out)
        out.append(MOp("JAL", target=mop.target))
        if mop.dest1 is not None:
            if not isinstance(mop.dest1, Reg):
                raise ScheduleError(f"unallocated call result {mop.dest1!r}")
            out.append(MOp("MOVE", dest1=mop.dest1, src1=Reg(convention.rv)))

    def expand_ret(mop: MOp, out: List[MOp]) -> None:
        if mop.src1 is not None:
            move_into(Reg(convention.rv), mop.src1, out)
        for reg, offset in frame.save_offsets.items():
            out.append(MOp("LW", dest1=Reg(reg), src1=sp, src2=Lit(offset)))
        if frame.size:
            out.append(MOp("ADD", dest1=sp, src1=sp, src2=Lit(frame.size)))
        out.append(MOp("JR", src1=Reg(convention.ra)))

    for block in mfunc.blocks:
        expanded: List[MOp] = []
        for mop in block.mops:
            patch_marker(mop)
            if mop.mnemonic == ENTER:
                expand_enter(mop, expanded)
            elif mop.mnemonic == CALL:
                expand_call(mop, expanded)
            elif mop.mnemonic == RET:
                expand_ret(mop, expanded)
            else:
                expanded.append(mop)
        block.mops = expanded
