"""IR -> Armlet compilation pipeline for the SA-110 baseline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.backend.epic import link_runtime, _module_uses_div
from repro.backend.mops import MFunction, MOp
from repro.baseline.expand import expand_armlet_function
from repro.baseline.isel import ArmletISel
from repro.errors import ScheduleError
from repro.ir.module import Module
from repro.ir.verify import verify_module
from repro.sched.convention import armlet_convention
from repro.sched.regalloc import allocate_registers


@dataclass
class ArmletCompilation:
    """A flattened scalar program ready for the SA-110 simulator."""

    program: List[MOp]
    labels: Dict[str, int]
    data: List[int]
    symbols: Dict[str, int]

    @property
    def n_instructions(self) -> int:
        return len(self.program)

    def listing(self) -> str:
        by_index: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines = []
        for index, mop in enumerate(self.program):
            for name in sorted(by_index.get(index, [])):
                lines.append(f"{name}:")
            lines.append(f"  {index:5d}: {mop}")
        return "\n".join(lines)


def compile_ir_to_armlet(module: Module) -> ArmletCompilation:
    """Compile an IR module to a flat Armlet program."""
    if _module_uses_div(module):
        link_runtime(module)
    verify_module(module)
    convention = armlet_convention()
    addresses = module.layout_globals()

    program: List[MOp] = []
    labels: Dict[str, int] = {}
    for function in module.functions.values():
        mfunc = ArmletISel(function, module, addresses).run()
        allocation = allocate_registers(mfunc, convention)
        expand_armlet_function(mfunc, convention, allocation)
        for block in mfunc.blocks:
            if block.label in labels:
                raise ScheduleError(f"duplicate label {block.label!r}")
            labels[block.label] = len(program)
            program.extend(block.mops)

    return ArmletCompilation(
        program=program,
        labels=labels,
        data=module.data_image(),
        symbols=dict(addresses),
    )


def compile_minic_to_armlet(source: str, unroll: bool = False,
                            optimize: bool = True) -> ArmletCompilation:
    """Convenience: MiniC source -> Armlet program.

    Unrolling defaults to *off* for the baseline: a scalar pipeline gains
    little from it, and a 1990s ARM compiler would not have done it.
    The flag exists so the effect can be measured.
    """
    from repro.lang.compile import compile_minic  # local: avoid cycle

    module = compile_minic(source, unroll=unroll, optimize=optimize)
    return compile_ir_to_armlet(module)
