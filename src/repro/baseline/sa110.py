"""In-order timing simulator with SA-110-style pipeline behaviour.

The StrongARM SA-110 is a single-issue, in-order, 5-stage pipeline at
100-233 MHz.  The timing model charges:

* 1 cycle per instruction (the paper's comparison is cycle-count based);
* +2 cycles for every *taken* branch, call and return (branches resolve
  late; the SA-110 has no branch prediction);
* +1 cycle when an instruction consumes the result of the immediately
  preceding load (the classic load-use interlock);
* 1-3 extra cycles for multiplies, terminating early on small
  multipliers (the SA-110's early-termination multiplier);
* +1 cycle for full-width immediate builds (ARM synthesises wide
  constants with instruction pairs or literal-pool loads).

These constants are a configuration object so the sensitivity of the
paper's conclusions to the baseline model can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.mops import MFunction, MOp
from repro.errors import CycleLimitExceeded, SimulationError
from repro.isa.operands import Lit, Reg
from repro.isa.semantics import ALU_SEMANTICS, CMP_SEMANTICS, to_signed, to_unsigned

_ALU = {
    "ADD": "ADD", "SUB": "SUB", "MUL": "MUL", "AND": "AND", "OR": "OR",
    "XOR": "XOR", "SHL": "SHL", "SHR": "SHR", "SHRA": "SHRA",
}
_BRANCH_CMP = {
    "BEQ": "CMPP_EQ", "BNE": "CMPP_NE", "BLT": "CMPP_LT", "BLE": "CMPP_LE",
    "BGT": "CMPP_GT", "BGE": "CMPP_GE", "BLTU": "CMPP_ULT", "BGEU": "CMPP_UGE",
}


@dataclass(frozen=True)
class Sa110Timing:
    """Pipeline cost model (cycles)."""

    taken_branch_penalty: int = 2
    load_use_stall: int = 1
    mul_small: int = 1      # |multiplier| < 2**8
    mul_medium: int = 2     # |multiplier| < 2**20
    mul_large: int = 3
    wide_immediate: int = 1

    def mul_extra(self, multiplier: int) -> int:
        magnitude = abs(to_signed(multiplier, 32))
        if magnitude < (1 << 8):
            return self.mul_small
        if magnitude < (1 << 20):
            return self.mul_medium
        return self.mul_large


@dataclass
class Sa110Stats:
    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    branches_taken: int = 0
    load_use_stalls: int = 0
    memory_reads: int = 0
    memory_writes: int = 0


@dataclass
class Sa110Result:
    cycles: int
    stats: Sa110Stats
    return_value: int


class Sa110Simulator:
    """Executes a flattened Armlet program with SA-110 timing."""

    def __init__(self, program: Sequence[MOp], labels: Dict[str, int],
                 data: Sequence[int], mem_words: int = 1 << 16,
                 timing: Optional[Sa110Timing] = None,
                 entry: str = "main"):
        self.program = list(program)
        self.labels = dict(labels)
        self.timing = timing if timing is not None else Sa110Timing()
        if len(data) > mem_words:
            raise SimulationError("data image exceeds memory")
        self.memory: List[int] = list(data) + [0] * (mem_words - len(data))
        self.regs: List[int] = [0] * 16
        self.regs[1] = mem_words  # stack pointer
        self.stats = Sa110Stats()
        if entry not in labels:
            raise SimulationError(f"entry label {entry!r} not found")
        self._entry = labels[entry]

    # -- helpers ------------------------------------------------------------

    def _read(self, operand) -> int:
        if isinstance(operand, Lit):
            return to_unsigned(operand.value, 32)
        if isinstance(operand, Reg):
            return 0 if operand.index == 0 else self.regs[operand.index]
        raise SimulationError(f"bad operand {operand!r}")

    def _write(self, operand, value: int) -> None:
        if not isinstance(operand, Reg):
            raise SimulationError(f"bad destination {operand!r}")
        if operand.index != 0:
            self.regs[operand.index] = value & 0xFFFFFFFF

    # -- execution -----------------------------------------------------------

    def run(self, max_instructions: int = 500_000_000) -> Sa110Result:
        timing = self.timing
        stats = self.stats
        pc = len(self.program)       # virtual start: call entry, then halt
        link_halt = pc + 1
        # Synthetic prologue: JAL entry; HALT.
        self.regs[3] = link_halt
        pc = self._entry
        cycles = timing.taken_branch_penalty + 1  # the initial call
        stats.instructions += 1
        stats.branches += 1
        stats.branches_taken += 1

        pending_load_dest = -1
        halted = False

        while not halted:
            if pc == link_halt:
                break
            if not 0 <= pc < len(self.program):
                raise SimulationError(f"PC out of range: {pc}")
            if stats.instructions >= max_instructions:
                raise CycleLimitExceeded(
                    f"instruction budget exhausted after "
                    f"{stats.instructions} instructions / {cycles} cycles "
                    f"(runaway program?)",
                    cycle=cycles, pc=pc, limit=max_instructions,
                )
            mop = self.program[pc]
            mnemonic = mop.mnemonic
            stats.instructions += 1
            cycles += 1

            # Load-use interlock.
            if pending_load_dest >= 0:
                reads = [
                    op.index for op in
                    (mop.src1, mop.src2,
                     mop.dest1 if mnemonic == "SW" else None)
                    if isinstance(op, Reg)
                ]
                if pending_load_dest in reads:
                    cycles += timing.load_use_stall
                    stats.load_use_stalls += 1
            pending_load_dest = -1

            next_pc = pc + 1
            if mnemonic in _ALU:
                a = self._read(mop.src1)
                b = self._read(mop.src2)
                if mnemonic == "MUL":
                    cycles += timing.mul_extra(b)
                self._write(mop.dest1, ALU_SEMANTICS[mnemonic](a, b, 32))
            elif mnemonic == "MOVE":
                self._write(mop.dest1, self._read(mop.src1))
            elif mnemonic == "MOVI":
                cycles += timing.wide_immediate
                self._write(mop.dest1, self._read(mop.src1))
            elif mnemonic in ("LW", "LWS"):
                address = to_signed(
                    (self._read(mop.src1) + self._read(mop.src2))
                    & 0xFFFFFFFF, 32)
                if not 0 <= address < len(self.memory):
                    if mnemonic == "LWS":
                        value = 0
                    else:
                        raise SimulationError(
                            f"load from invalid address {address}", pc=pc)
                else:
                    value = self.memory[address]
                self._write(mop.dest1, value)
                stats.memory_reads += 1
                pending_load_dest = mop.dest1.index
            elif mnemonic == "SW":
                address = to_signed(
                    (self._read(mop.src1) + self._read(mop.src2))
                    & 0xFFFFFFFF, 32)
                if not 0 <= address < len(self.memory):
                    raise SimulationError(
                        f"store to invalid address {address}", pc=pc)
                self.memory[address] = self._read(mop.dest1)
                stats.memory_writes += 1
            elif mnemonic in _BRANCH_CMP:
                stats.branches += 1
                a = self._read(mop.src1)
                b = self._read(mop.src2)
                if CMP_SEMANTICS[_BRANCH_CMP[mnemonic]](a, b, 32):
                    stats.branches_taken += 1
                    cycles += timing.taken_branch_penalty
                    next_pc = self.labels[mop.target]
            elif mnemonic == "B":
                stats.branches += 1
                stats.branches_taken += 1
                cycles += timing.taken_branch_penalty
                next_pc = self.labels[mop.target]
            elif mnemonic == "JAL":
                stats.branches += 1
                stats.branches_taken += 1
                cycles += timing.taken_branch_penalty
                self.regs[3] = pc + 1
                next_pc = self.labels[mop.target]
            elif mnemonic == "JR":
                stats.branches += 1
                stats.branches_taken += 1
                cycles += timing.taken_branch_penalty
                next_pc = self._read(mop.src1)
            elif mnemonic == "HALT":
                halted = True
            elif mnemonic == "NOP":
                pass
            else:
                raise SimulationError(
                    f"unknown baseline opcode {mnemonic!r}", pc=pc)
            pc = next_pc

        stats.cycles = cycles
        return Sa110Result(cycles=cycles, stats=stats,
                           return_value=self.regs[2])
