"""Custom instructions (paper §3.3): performance vs area.

The paper's architecture admits application-specific instructions by
"modification of the concerned functional unit", with the assembler and
compiler adapting through the configuration file alone.  This example:

1. defines a fused SHA-256 sigma operation as a CustomOpSpec;
2. writes the kernel once in MiniC, with a *software definition* whose
   name matches the custom opcode — configurations with the instruction
   intrinsify the call into one ALU op, everything else runs the
   function;
3. measures cycles saved and Virtex-II slices spent.

Run:  python examples/custom_instruction.py
"""

from repro.backend import compile_minic_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.fpga import estimate_resources
from repro.isa import CustomOpSpec


def _ror(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & 0xFFFFFFFF


#: Hardware semantics of the fused operation (one cycle, ~180 slices of
#: xor/rotate wiring per ALU).
SIGMA0 = CustomOpSpec(
    "SIGMA0",
    func=lambda a, b, mask: (_ror(a, 7) ^ _ror(a, 18) ^ (a >> 3)) & mask,
    latency=1,
    slices=180,
    description="SHA-256 message-schedule sigma-0",
)

KERNEL = """
int input[64];
int output[64];

// Software fallback; intrinsified when the SIGMA0 custom op exists.
int sigma0(int x, int unused) {
  return ((x >>> 7) | (x << 25)) ^ ((x >>> 18) | (x << 14)) ^ (x >>> 3);
}

int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 64; i += 1) { input[i] = i * 2654435761; }
  unroll(4) for (i = 0; i < 64; i += 1) {
    output[i] = sigma0(input[i], 0);
    acc ^= output[i];
  }
  return acc;
}
"""


def measure(config):
    compilation = compile_minic_to_epic(KERNEL, config)
    cpu = EpicProcessor(config, compilation.program, mem_words=4096)
    result = cpu.run()
    return result.cycles, cpu.gpr.read(2), estimate_resources(config)


def main() -> None:
    plain_config = epic_config()
    custom_config = epic_config(custom_ops=(SIGMA0,))

    plain_cycles, plain_value, plain_area = measure(plain_config)
    custom_cycles, custom_value, custom_area = measure(custom_config)

    assert plain_value == custom_value, "customisation changed results!"

    print("SHA sigma-0 kernel, 64 words, 4-ALU EPIC\n")
    print(f"{'configuration':<24}{'cycles':>10}{'slices':>10}")
    print(f"{'base ISA':<24}{plain_cycles:>10}{plain_area.slices:>10}")
    print(f"{'with SIGMA0':<24}{custom_cycles:>10}{custom_area.slices:>10}")
    speedup = plain_cycles / custom_cycles
    extra = custom_area.slices - plain_area.slices
    print(f"\nspeedup           : {speedup:.2f}x")
    print(f"extra slices      : {extra} "
          f"({100 * extra / plain_area.slices:.1f} % of the base design)")
    print(f"cycles per slice  : "
          f"{(plain_cycles - custom_cycles) / extra:.1f} saved")


if __name__ == "__main__":
    main()
