"""Quickstart: the customisable EPIC processor in five minutes.

1. Configure a processor (paper defaults: 4 ALUs, 64 registers,
   4-issue).
2. Write a program — either EPIC assembly with explicit issue groups,
   or MiniC compiled by the retargetable toolchain.
3. Simulate cycle-accurately and inspect the statistics.

Run:  python examples/quickstart.py
"""

from repro.asm import assemble
from repro.backend import compile_minic_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor

# ----------------------------------------------------------------------
# Part 1: hand-written assembly with explicit issue groups.
# ----------------------------------------------------------------------

ASSEMBLY = """
// Sum of an array, one explicit issue group per line.
.data
numbers: .word 3, 14, 15, 92, 65, 35, 89, 79
total:   .space 1
.text
main:
  MOVI r4, 0               ;; index
  MOVI r5, 0               ;; running total
  PBR b0, loop             ;; prepare the loop-back target
loop:
{ LW r6, r4, numbers ; ADD r4, r4, 1 }   // load + bump index together
  NOP                      ;; LW latency is 2: wait one bundle
  ADD r5, r5, r6
{ CMPP_LT p1, p2, r4, 8 }  // p1 = index < 8, p2 = its complement
  BRCT b0, p1              ;; loop while p1
  SW r5, r0, total
  HALT
"""


def run_assembly_example() -> None:
    config = epic_config()
    print(f"Processor: {config.describe()}")

    program = assemble(ASSEMBLY, config)
    cpu = EpicProcessor(config, program, mem_words=1024)
    result = cpu.run()

    print(f"sum = {cpu.memory.read(program.symbols['total'])}")
    print(f"cycles = {result.cycles}")
    print(cpu.stats.summary())


# ----------------------------------------------------------------------
# Part 2: the same task in MiniC through the full toolchain
# (front-end -> IR optimiser -> scheduler -> assembler).
# ----------------------------------------------------------------------

MINIC = """
int numbers[8] = {3, 14, 15, 92, 65, 35, 89, 79};
int total;

int main() {
  int i;
  total = 0;
  unroll for (i = 0; i < 8; i += 1) {   // expose ILP to the scheduler
    total += numbers[i];
  }
  return total;
}
"""


def run_minic_example() -> None:
    config = epic_config()
    compilation = compile_minic_to_epic(MINIC, config)

    print(f"\ncompiled to {compilation.code_bundles} issue groups")
    print("scheduled assembly for main():")
    in_main = False
    for line in compilation.assembly.splitlines():
        if line.startswith("main:"):
            in_main = True
        elif line.endswith(":") or line.startswith("."):
            in_main = False
        if in_main:
            print("   ", line)

    cpu = EpicProcessor(config, compilation.program, mem_words=1024)
    result = cpu.run()
    print(f"main() returned {cpu.gpr.read(2)} in {result.cycles} cycles "
          f"(ILP {cpu.stats.ilp:.2f})")


if __name__ == "__main__":
    run_assembly_example()
    run_minic_example()
