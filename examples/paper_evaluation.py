"""Reproduce the paper's evaluation section programmatically.

Regenerates Table 1, Figures 3-5 and the §5.1 resource table at a
reduced input scale, and scores every quantitative claim from §5.2
(same outputs as the `epic-run` command, via the library API).

Run:  python examples/paper_evaluation.py          (takes ~1 minute)
"""

import sys

from repro.harness import build_table1, paper_comparison
from repro.harness.figures import all_figures
from repro.harness.report import render_report
from repro.harness.tables import render_resource_table, resource_usage_table
from repro.workloads import (
    aes_workload, dct_workload, dijkstra_workload, sha_workload,
)


def main() -> None:
    specs = [
        sha_workload(16, 16),      # paper: 256x256 PPM
        aes_workload(5),           # paper: 1000 iterations
        dct_workload(16, 16),      # paper: 256x256 PPM
        dijkstra_workload(12),     # paper: "a large graph"
    ]
    print("compiling and simulating 4 benchmarks x 5 processors "
          "(every run is validated against the golden reference)...",
          file=sys.stderr)
    table = build_table1(
        specs, progress=lambda text: print("  " + text, file=sys.stderr)
    )

    print("\nTable 1: Summary of the number of clock cycles required for "
          "different benchmarks")
    print(table.render())

    for figure in all_figures(table):
        print()
        print(figure.render())

    print()
    print(render_report(paper_comparison(table)))

    print("\nResource usage (paper §5.1):")
    print(render_resource_table(resource_usage_table()))


if __name__ == "__main__":
    main()
