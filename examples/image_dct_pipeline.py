"""An image-processing pipeline on the EPIC soft core.

The paper motivates the architecture with "demanding applications, such
as those involving real-time operations"; its flagship benchmark is the
fixed-point DCT over a PPM image.  This example runs the whole pipeline:

  generate image -> compile the DCT codec -> simulate on two EPIC
  configurations -> verify the reconstruction -> report quality (PSNR)
  and throughput at the modelled 41.8 MHz clock.

Run:  python examples/image_dct_pipeline.py
"""

import math

from repro.backend import compile_minic_to_epic
from repro.config import epic_with_alus
from repro.core import EpicProcessor
from repro.workloads import dct_workload
from repro.workloads.ppm import generate_gray

WIDTH = HEIGHT = 16


def signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


def psnr(original, reconstructed) -> float:
    mse = sum(
        (a - signed(b)) ** 2 for a, b in zip(original, reconstructed)
    ) / len(original)
    if mse == 0:
        return float("inf")
    return 10 * math.log10(255 ** 2 / mse)


def main() -> None:
    spec = dct_workload(WIDTH, HEIGHT, seed=11)
    pixels = generate_gray(WIDTH, HEIGHT, seed=11)
    print(f"image: {WIDTH}x{HEIGHT} greyscale, "
          f"{(WIDTH // 8) * (HEIGHT // 8)} DCT blocks\n")

    for n_alus in (1, 4):
        config = epic_with_alus(n_alus)
        compilation = compile_minic_to_epic(spec.source, config)
        cpu = EpicProcessor(config, compilation.program,
                            mem_words=spec.mem_words)
        result = cpu.run()

        base = compilation.symbols["recon"]
        recon = [cpu.memory.read(base + i) for i in range(WIDTH * HEIGHT)]
        assert recon == spec.expected["recon"], "reconstruction mismatch"

        clock_hz = config.clock_mhz * 1e6
        frame_time = result.cycles / clock_hz
        print(f"EPIC with {n_alus} ALU(s):")
        print(f"  cycles per frame : {result.cycles}")
        print(f"  achieved ILP     : {cpu.stats.ilp:.2f}")
        print(f"  time @ 41.8 MHz  : {frame_time * 1e3:.3f} ms "
              f"({1 / frame_time:.1f} frames/s)")
        print(f"  PSNR             : {psnr(pixels, recon):.1f} dB\n")


if __name__ == "__main__":
    main()
