"""Performance/area design-space exploration (paper §1, §3.3).

"Such customisable designs provide a platform for designers to explore
performance/area trade-offs for a specific application using different
implementations."

This example sweeps ALU count, issue width and the divide feature on
the DCT workload, costs each point with the Virtex-II model, and prints
the Pareto frontier — the §3.3 customisation workflow end to end.

Run:  python examples/design_space_exploration.py
"""

from repro.config import AluFeature, epic_config
from repro.explore import pareto_frontier, sweep_configs
from repro.workloads import dct_workload

NO_DIV = frozenset({AluFeature.MULTIPLY, AluFeature.SHIFT})


def design_points():
    """The sweep: 1-4 ALUs x {full ALU, divider-free} x issue width."""
    for n_alus in (1, 2, 3, 4):
        for features in (None, NO_DIV):
            overrides = {"n_alus": n_alus}
            if features is not None:
                overrides["alu_features"] = features
            yield epic_config(**overrides)
        if n_alus == 4:
            yield epic_config(n_alus=4, issue_width=2)


def main() -> None:
    spec = dct_workload(16, 16)
    print(f"workload: DCT, {spec.scale_note}\n")

    points = sweep_configs(
        spec, design_points(),
        progress=lambda text: print(f"  evaluating {text}"),
    )

    print(f"\n{'configuration':<44}{'cycles':>9}{'slices':>8}"
          f"{'ms':>8}{'AD':>10}")
    for point in points:
        print(f"{point.config.describe():<44}{point.cycles:>9}"
              f"{point.slices:>8}{point.time_seconds * 1e3:>8.3f}"
              f"{point.area_delay:>10.3f}")

    frontier = pareto_frontier(points)
    print("\nPareto frontier (time vs slices):")
    for point in frontier:
        print(f"  {point}")

    best = min(points, key=lambda p: p.area_delay)
    print(f"\nbest area-delay product: {best}")


if __name__ == "__main__":
    main()
