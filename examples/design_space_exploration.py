"""Performance/area design-space exploration (paper §1, §3.3).

"Such customisable designs provide a platform for designers to explore
performance/area trade-offs for a specific application using different
implementations."

This example drives the autotuner (`repro.autotune`) over a small
MachineConfig space on the DCT workload three ways:

1. an exhaustive search extracting the cycles x slices frontier,
2. a constrained query — "the fastest machines under 7000 slices",
3. a seeded hill-climb on a budget, whose frontier is checked against
   the exhaustive ground truth (same archive, fewer evaluations when
   the budget is tight; identical here because the budget covers the
   space).

Run:  python examples/design_space_exploration.py
"""

from repro.autotune import (
    CandidateEvaluator,
    SearchSpace,
    TuneArchive,
    field_axis,
    parse_constraints,
    tune,
)
from repro.config import epic_config
from repro.workloads import dct_workload


def build_space() -> SearchSpace:
    """1-4 ALUs x issue width x forwarding: 16 coordinates."""
    return SearchSpace(epic_config(), [
        field_axis("n_alus", (1, 2, 3, 4)),
        field_axis("issue_width", (2, 4)),
        field_axis("forwarding", (True, False)),
    ])


def search(spec, strategy="exhaustive", seed=1, budget=None,
           constraints=()):
    archive = TuneArchive(objectives=("cycles", "slices"),
                          constraints=parse_constraints(constraints))
    evaluator = CandidateEvaluator(spec, archive)
    report = tune(build_space(), evaluator, archive,
                  strategy=strategy, seed=seed, budget=budget)
    return report, archive


def show_frontier(archive) -> None:
    for record in archive.frontier():
        metrics = record.metrics
        print(f"  {record.describe}: {metrics['cycles']} cycles, "
              f"{metrics['slices']} slices, "
              f"{metrics['time_ms']:.3f} ms")


def main() -> None:
    spec = dct_workload(16, 16)
    print(f"workload: DCT, {spec.scale_note}")
    space = build_space()
    print(f"space: {space.describe()}\n")

    print("exhaustive cycles x slices frontier:")
    exhaustive, archive = search(spec)
    show_frontier(archive)
    print(f"  ({archive.explain()})")

    print("\nfastest machines under 7000 slices:")
    _report, constrained = search(spec, constraints=["slices<=7000"])
    show_frontier(constrained)

    print("\nseeded hill-climb (seed=7, budget=16):")
    hill_report, hill = search(spec, strategy="hill", seed=7, budget=16)
    show_frontier(hill)
    agree = hill_report["archive"]["frontier"] \
        == exhaustive["archive"]["frontier"]
    print(f"  hill-climber frontier equals exhaustive: {agree}")


if __name__ == "__main__":
    main()
