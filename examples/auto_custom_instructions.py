"""Automatic custom-instruction generation (paper §6, implemented).

The paper lists "supporting automatic generation of custom
instructions" as future work.  This example runs the implemented loop
on a hashing kernel:

  profile on the golden interpreter -> rank fusible operation pairs by
  dynamic count -> synthesize CustomOpSpecs + software fallbacks ->
  rewrite the IR -> compile for a configuration carrying the new
  instructions -> measure cycles and slices.

Run:  python examples/auto_custom_instructions.py
"""

from repro.backend import compile_ir_to_epic
from repro.config import epic_config
from repro.core import EpicProcessor
from repro.explore import discover_and_apply, find_fusion_candidates
from repro.fpga import estimate_resources
from repro.ir import run_module
from repro.lang import compile_minic

KERNEL = """
int data[64];
int out[64];
int main() {
  int i; int x; int acc;
  acc = 0;
  for (i = 0; i < 64; i += 1) { data[i] = (i + 1) * 2654435761; }
  unroll(4) for (i = 0; i < 64; i += 1) {
    x = data[i];
    // A mix of fusible two-op chains (shift-xor, and-mul, mul-add).
    out[i] = ((x >>> 7) ^ (x << 3)) + ((x & 255) * 5);
    acc ^= out[i];
  }
  return acc;
}
"""


def cycles_of(module, config):
    compilation = compile_ir_to_epic(module, config)
    cpu = EpicProcessor(config, compilation.program, mem_words=8192)
    return cpu.run().cycles


def main() -> None:
    golden = run_module(compile_minic(KERNEL)).result & 0xFFFFFFFF

    # 1-2. Profile and rank.
    module = compile_minic(KERNEL)
    candidates = find_fusion_candidates(module)
    print("fusion candidates (by dynamic operation count):")
    for candidate in candidates[:5]:
        print(f"  {candidate.pattern.mnemonic:<28}"
              f"{candidate.dynamic_count:>8} dynamic ops saved")

    # 3-4. Synthesize + rewrite, then compile both ways.
    specs = discover_and_apply(module, top_k=2)
    plain_config = epic_config()
    custom_config = epic_config(custom_ops=tuple(specs))

    plain_cycles = cycles_of(compile_minic(KERNEL), plain_config)
    custom_cycles = cycles_of(module, custom_config)

    # Verify the customised machine still computes the right answer.
    compilation = compile_ir_to_epic(module, custom_config)
    cpu = EpicProcessor(custom_config, compilation.program, mem_words=8192)
    cpu.run()
    assert cpu.gpr.read(2) == golden, "customisation broke the program!"

    plain_area = estimate_resources(plain_config).slices
    custom_area = estimate_resources(custom_config).slices

    print(f"\ninstalled: {', '.join(spec.mnemonic for spec in specs)}")
    print(f"{'configuration':<18}{'cycles':>9}{'slices':>9}")
    print(f"{'base ISA':<18}{plain_cycles:>9}{plain_area:>9}")
    print(f"{'auto-customised':<18}{custom_cycles:>9}{custom_area:>9}")
    print(f"\nspeedup: {plain_cycles / custom_cycles:.2f}x for "
          f"{custom_area - plain_area} extra slices")


if __name__ == "__main__":
    main()
